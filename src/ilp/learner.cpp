#include "ilp/learner.hpp"

#include <algorithm>
#include <bit>
#include <unordered_map>
#include <unordered_set>

#include "asp/substitution.hpp"
#include "ilp/guidance.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace agenp::ilp {

std::string LearnResult::hypothesis_to_string() const {
    std::string out;
    for (const auto& [rule, production] : hypothesis) {
        out += rule.to_string() + "   % -> production " + std::to_string(production) + "\n";
    }
    return out;
}

namespace {

using asg::Trace;

// ---------------------------------------------------------------------------
// Fast path: constraint-only hypothesis spaces.
// ---------------------------------------------------------------------------

// One answer set of the base program for one parse tree, indexed for joins.
struct World {
    std::size_t tree_index = 0;
    std::unordered_set<asp::Atom> atoms;
    std::unordered_map<util::Symbol, std::vector<asp::Atom>> by_pred;

    void add(const asp::Atom& a) {
        atoms.insert(a);
        by_pred[a.predicate].push_back(a);
    }
};

struct TreeInfo {
    // production index -> traces of nodes using it
    std::unordered_map<int, std::vector<Trace>> nodes;
};

struct ExampleWorlds {
    std::vector<TreeInfo> trees;
    std::vector<World> worlds;  // capped at 64 so masks fit a word
    bool cap_hit = false;
};

using Mask = std::uint64_t;

Mask all_worlds_mask(std::size_t n) { return n >= 64 ? ~Mask{0} : ((Mask{1} << n) - 1); }

// Evaluates the body of a (renamed, possibly non-ground) constraint against
// a fixed interpretation: true iff some grounding satisfies every positive
// literal, every builtin, and no negative literal.
class BodyMatcher {
public:
    BodyMatcher(const asp::Rule& rule, const World& world) : rule_(rule), world_(world) {}

    bool exists_match() {
        asp::Subst subst;
        return match_positive(0, subst);
    }

private:
    bool match_positive(std::size_t index, asp::Subst& subst) {
        // Advance to the next positive literal.
        while (index < rule_.body.size() && !rule_.body[index].positive) ++index;
        if (index == rule_.body.size()) return finish(subst);
        const asp::Atom& pattern = rule_.body[index].atom;
        auto it = world_.by_pred.find(pattern.predicate);
        if (it == world_.by_pred.end()) return false;
        for (const auto& atom : it->second) {
            std::size_t mark = subst.size();
            if (asp::match_atom(pattern, atom, subst) && match_positive(index + 1, subst)) {
                return true;
            }
            subst.truncate(mark);
        }
        return false;
    }

    bool finish(asp::Subst& subst) {
        // Builtins, with `V = ground-expr` binders (multi-pass like the
        // grounder).
        std::size_t mark = subst.size();
        std::vector<bool> done(rule_.builtins.size(), false);
        std::size_t remaining = rule_.builtins.size();
        bool progress = true;
        while (progress && remaining > 0) {
            progress = false;
            for (std::size_t i = 0; i < rule_.builtins.size(); ++i) {
                if (done[i]) continue;
                asp::Term lhs = asp::apply_subst(rule_.builtins[i].lhs, subst);
                asp::Term rhs = asp::apply_subst(rule_.builtins[i].rhs, subst);
                if (rule_.builtins[i].op == asp::Comparison::Op::Eq && lhs.is_variable() &&
                    rhs.is_ground()) {
                    auto value = asp::evaluate_arithmetic(rhs);
                    if (!value) {
                        subst.truncate(mark);
                        return false;
                    }
                    subst.bind(lhs.symbol(), *value);
                } else if (lhs.is_ground() && rhs.is_ground()) {
                    auto result = asp::Comparison(rule_.builtins[i].op, lhs, rhs).evaluate();
                    if (!result || !*result) {
                        subst.truncate(mark);
                        return false;
                    }
                } else {
                    continue;
                }
                done[i] = true;
                --remaining;
                progress = true;
            }
        }
        if (remaining > 0) {  // unsafe leftovers; treat as no match
            subst.truncate(mark);
            return false;
        }
        // Negative literals must be absent from the interpretation.
        for (const auto& l : rule_.body) {
            if (l.positive) continue;
            asp::Atom ground_atom = asp::apply_subst(l.atom, subst);
            if (world_.atoms.contains(ground_atom)) {
                subst.truncate(mark);
                return false;
            }
        }
        return true;
    }

    const asp::Rule& rule_;
    const World& world_;
};

class FastPathLearner {
public:
    FastPathLearner(const LearningTask& task, const LearnOptions& options)
        : task_(task), options_(options) {}

    LearnResult run() {
        LearnResult result;
        result.stats.used_fast_path = true;
        result.stats.candidates = task_.space.candidates.size();

        noisy_ = options_.noise_penalty > 0;
        if (!build_worlds(result)) return result;
        build_violation_masks(result);

        // In strict mode, candidates that kill every world of some positive
        // example can never appear in a solution. In noisy mode a positive
        // may be sacrificed, so every candidate stays usable.
        std::vector<std::size_t> usable;
        for (std::size_t c = 0; c < task_.space.candidates.size(); ++c) {
            bool ok = true;
            if (!noisy_) {
                for (std::size_t e = 0; e < positive_.size() && ok; ++e) {
                    Mask alive = all_worlds_mask(positive_[e].worlds.size()) & ~violates_pos_[c][e];
                    if (alive == 0) ok = false;
                }
            }
            if (ok) usable.push_back(c);
        }

        // Strict feasibility: every world of every negative example must be
        // eliminable. (In noisy mode such a negative is abandonable.)
        if (!noisy_) {
            for (std::size_t e = 0; e < negative_.size(); ++e) {
                Mask covered = 0;
                for (auto c : usable) covered |= violates_neg_[c][e];
                if ((covered & all_worlds_mask(negative_[e].worlds.size())) !=
                    all_worlds_mask(negative_[e].worlds.size())) {
                    result.failure_reason =
                        "negative example " + std::to_string(e) +
                        " has a world no candidate constraint can eliminate";
                    return result;
                }
            }
        }

        // Exact branch-and-bound set cover (with optional per-example
        // penalties).
        pos_alive_.assign(positive_.size(), 0);
        for (std::size_t e = 0; e < positive_.size(); ++e) {
            pos_alive_[e] = all_worlds_mask(positive_[e].worlds.size());
        }
        neg_left_.assign(negative_.size(), 0);
        for (std::size_t e = 0; e < negative_.size(); ++e) {
            neg_left_[e] = all_worlds_mask(negative_[e].worlds.size());
        }
        sacrificed_pos_.assign(positive_.size(), 0);
        abandoned_neg_.assign(negative_.size(), 0);
        usable_ = std::move(usable);
        // Statistical guidance: branch on predicted-useful candidates first
        // (stable: equal scores keep generation order, which is cost order).
        if (options_.guidance != nullptr && options_.guidance->trained()) {
            std::vector<double> scores(task_.space.candidates.size());
            for (auto c : usable_) scores[c] = options_.guidance->score(task_.space.candidates[c]);
            std::stable_sort(usable_.begin(), usable_.end(),
                             [&](std::size_t a, std::size_t b) { return scores[a] > scores[b]; });
        }
        best_cost_ = options_.max_cost + 1;
        best_violated_ = 0;
        // Worldless positives are violated from the outset in noisy mode.
        int base_penalty = 0;
        for (const auto& p : positive_) {
            if (p.worlds.empty()) base_penalty += options_.noise_penalty;
        }
        search(0, base_penalty, result.stats);

        if (best_cost_ > options_.max_cost) {
            if (result.failure_reason.empty()) {
                result.failure_reason = "no hypothesis within cost bound " +
                                        std::to_string(options_.max_cost);
            }
            return result;
        }
        result.found = true;
        result.cost = best_cost_;
        result.violated_examples = best_violated_;
        for (auto c : best_choice_) {
            const auto& cand = task_.space.candidates[c];
            result.hypothesis.emplace_back(cand.rule, cand.production);
        }
        return result;
    }

private:
    bool build_worlds(LearnResult& result) {
        auto build = [&](const Example& ex, ExampleWorlds& out) {
            auto trees = cfg::parse_trees(task_.initial.grammar(), ex.string,
                                          options_.membership.parse);
            std::size_t cap = std::min<std::size_t>(options_.max_worlds_per_example, 64);
            for (const auto& tree : trees) {
                TreeInfo info;
                for (auto& [trace, production] : asg::production_nodes(tree)) {
                    info.nodes[production].push_back(trace);
                }
                std::size_t tree_index = out.trees.size();
                out.trees.push_back(std::move(info));
                if (out.worlds.size() >= cap) {
                    out.cap_hit = true;
                    continue;
                }
                asp::Program program = asg::instantiate(task_.initial, tree, ex.context);
                auto gp = asp::ground(program, options_.membership.grounding);
                auto solve_options = options_.membership.solve;
                solve_options.max_models = cap - out.worlds.size() + 1;
                auto solved = asp::solve(gp, solve_options);
                ++result.stats.coverage_checks;
                for (const auto& model : solved.models) {
                    if (out.worlds.size() >= cap) {
                        out.cap_hit = true;
                        break;
                    }
                    World w;
                    w.tree_index = tree_index;
                    for (auto id : model) w.add(gp.atom(id));
                    out.worlds.push_back(std::move(w));
                }
            }
            if (out.cap_hit) result.stats.world_cap_hit = true;
        };

        for (const auto& ex : task_.positive) {
            ExampleWorlds w;
            build(ex, w);
            if (w.worlds.empty() && !noisy_) {
                result.failure_reason = "positive example '" + cfg::detokenize(ex.string) +
                                        "' is not accepted by the initial ASG under its context; "
                                        "constraints cannot add strings";
                return false;
            }
            // In noisy mode a worldless positive is unfixable and counts as
            // violated from the start.
            positive_.push_back(std::move(w));
        }
        for (const auto& ex : task_.negative) {
            ExampleWorlds w;
            build(ex, w);
            // Negative examples with no worlds are already rejected.
            if (!w.worlds.empty()) negative_.push_back(std::move(w));
        }
        return true;
    }

    void build_violation_masks(LearnResult& result) {
        auto masks_for = [&](const ExampleWorlds& ew, const Candidate& cand) {
            Mask mask = 0;
            for (std::size_t w = 0; w < ew.worlds.size(); ++w) {
                const World& world = ew.worlds[w];
                const TreeInfo& info = ew.trees[world.tree_index];
                auto it = info.nodes.find(cand.production);
                if (it == info.nodes.end()) continue;
                bool violated = false;
                for (const auto& trace : it->second) {
                    asp::Rule renamed = asg::rename_rule_at(cand.rule, trace);
                    ++result.stats.coverage_checks;
                    if (BodyMatcher(renamed, world).exists_match()) {
                        violated = true;
                        break;
                    }
                }
                if (violated) mask |= Mask{1} << w;
            }
            return mask;
        };

        std::size_t n = task_.space.candidates.size();
        violates_pos_.assign(n, {});
        violates_neg_.assign(n, {});
        for (std::size_t c = 0; c < n; ++c) {
            const auto& cand = task_.space.candidates[c];
            violates_pos_[c].resize(positive_.size());
            for (std::size_t e = 0; e < positive_.size(); ++e) {
                violates_pos_[c][e] = masks_for(positive_[e], cand);
            }
            violates_neg_[c].resize(negative_.size());
            for (std::size_t e = 0; e < negative_.size(); ++e) {
                violates_neg_[c][e] = masks_for(negative_[e], cand);
            }
        }
    }

    // Counts positives violated in the current state (sacrificed or, at
    // entry, worldless in noisy mode).
    std::size_t violated_now() const {
        std::size_t n = 0;
        for (std::size_t e = 0; e < positive_.size(); ++e) {
            if (sacrificed_pos_[e] || positive_[e].worlds.empty()) ++n;
        }
        for (std::size_t e = 0; e < negative_.size(); ++e) n += abandoned_neg_[e] != 0;
        return n;
    }

    void search(int current_cost, int penalty_cost, LearnStats& stats) {
        if (++stats.search_nodes > options_.search_budget) return;
        int total = current_cost + penalty_cost;
        // Find an uncovered, unabandoned negative world.
        std::size_t target_e = negative_.size();
        int target_w = -1;
        for (std::size_t e = 0; e < negative_.size(); ++e) {
            if (neg_left_[e] != 0 && !abandoned_neg_[e]) {
                target_e = e;
                target_w = std::countr_zero(neg_left_[e]);
                break;
            }
        }
        if (target_e == negative_.size()) {
            // Every negative is rejected or abandoned.
            if (total < best_cost_) {
                best_cost_ = total;
                best_choice_ = chosen_;
                best_violated_ = violated_now();
            }
            return;
        }
        Mask want = Mask{1} << target_w;
        for (auto c : usable_) {
            if ((violates_neg_[c][target_e] & want) == 0) continue;
            int cost = task_.space.candidates[c].cost;
            if (std::find(chosen_.begin(), chosen_.end(), c) != chosen_.end()) continue;
            // Positives must keep a surviving world — or, in noisy mode, be
            // sacrificed at a penalty.
            std::vector<std::size_t> newly_sacrificed;
            bool ok = true;
            for (std::size_t e = 0; e < positive_.size(); ++e) {
                if (sacrificed_pos_[e] || positive_[e].worlds.empty()) continue;
                if ((pos_alive_[e] & ~violates_pos_[c][e]) == 0) {
                    if (!noisy_) {
                        ok = false;
                        break;
                    }
                    newly_sacrificed.push_back(e);
                }
            }
            if (!ok) continue;
            int extra_penalty =
                options_.noise_penalty * static_cast<int>(newly_sacrificed.size());
            if (total + cost + extra_penalty >= best_cost_) {
                ++stats.pruned_branches;
                continue;
            }
            // Apply.
            std::vector<Mask> saved_pos = pos_alive_;
            std::vector<Mask> saved_neg = neg_left_;
            for (std::size_t e = 0; e < positive_.size(); ++e) pos_alive_[e] &= ~violates_pos_[c][e];
            for (std::size_t e = 0; e < negative_.size(); ++e) neg_left_[e] &= ~violates_neg_[c][e];
            for (auto e : newly_sacrificed) sacrificed_pos_[e] = 1;
            chosen_.push_back(c);
            search(current_cost + cost, penalty_cost + extra_penalty, stats);
            chosen_.pop_back();
            for (auto e : newly_sacrificed) sacrificed_pos_[e] = 0;
            pos_alive_ = std::move(saved_pos);
            neg_left_ = std::move(saved_neg);
        }
        // Noisy mode: abandon this negative example instead of covering it.
        if (noisy_ && total + options_.noise_penalty < best_cost_) {
            abandoned_neg_[target_e] = 1;
            search(current_cost, penalty_cost + options_.noise_penalty, stats);
            abandoned_neg_[target_e] = 0;
        }
    }

    const LearningTask& task_;
    const LearnOptions& options_;
    std::vector<ExampleWorlds> positive_;
    std::vector<ExampleWorlds> negative_;
    std::vector<std::vector<Mask>> violates_pos_;  // [candidate][example]
    std::vector<std::vector<Mask>> violates_neg_;
    std::vector<std::size_t> usable_;
    std::vector<Mask> pos_alive_;
    std::vector<Mask> neg_left_;
    std::vector<char> sacrificed_pos_;
    std::vector<char> abandoned_neg_;
    std::vector<std::size_t> chosen_;
    std::vector<std::size_t> best_choice_;
    int best_cost_ = 0;
    std::size_t best_violated_ = 0;
    bool noisy_ = false;
};

// ---------------------------------------------------------------------------
// General path: CEGIS + iterative-deepening subset search.
// ---------------------------------------------------------------------------

class GeneralLearner {
public:
    GeneralLearner(const LearningTask& task, const LearnOptions& options)
        : task_(task), options_(options) {}

    LearnResult run() {
        LearnResult result;
        result.stats.candidates = task_.space.candidates.size();

        // (example index, is_positive) pairs driving the inner search.
        std::vector<std::pair<std::size_t, bool>> relevant;

        while (true) {
            ++result.stats.cegis_iterations;
            auto hypothesis = inner_search(relevant, result.stats);
            if (!hypothesis) {
                result.failure_reason = budget_exhausted_
                                            ? "search budget exhausted"
                                            : "no hypothesis within bounds covers the relevant examples";
                return result;
            }
            auto violated = first_violated(*hypothesis, result.stats);
            if (!violated) {
                result.found = true;
                for (auto c : *hypothesis) {
                    const auto& cand = task_.space.candidates[c];
                    result.hypothesis.emplace_back(cand.rule, cand.production);
                    result.cost += cand.cost;
                }
                return result;
            }
            relevant.push_back(*violated);
        }
    }

private:
    bool covers(const std::vector<std::size_t>& subset, const Example& ex, bool want,
                LearnStats& stats) {
        Hypothesis h;
        for (auto c : subset) {
            h.emplace_back(task_.space.candidates[c].rule, task_.space.candidates[c].production);
        }
        auto grammar = task_.initial.with_rules(h);
        ++stats.coverage_checks;
        return asg::in_language(grammar, ex.string, ex.context, options_.membership) == want;
    }

    std::optional<std::pair<std::size_t, bool>> first_violated(const std::vector<std::size_t>& subset,
                                                               LearnStats& stats) {
        for (std::size_t e = 0; e < task_.positive.size(); ++e) {
            if (!covers(subset, task_.positive[e], true, stats)) return std::make_pair(e, true);
        }
        for (std::size_t e = 0; e < task_.negative.size(); ++e) {
            if (!covers(subset, task_.negative[e], false, stats)) return std::make_pair(e, false);
        }
        return std::nullopt;
    }

    bool consistent_with_relevant(const std::vector<std::size_t>& subset,
                                  const std::vector<std::pair<std::size_t, bool>>& relevant,
                                  LearnStats& stats) {
        for (const auto& [index, positive] : relevant) {
            const Example& ex = positive ? task_.positive[index] : task_.negative[index];
            if (!covers(subset, ex, positive, stats)) return false;
        }
        return true;
    }

    // Minimal-cost subset consistent with the relevant examples, found by
    // iterative deepening over exact total cost.
    std::optional<std::vector<std::size_t>> inner_search(
        const std::vector<std::pair<std::size_t, bool>>& relevant, LearnStats& stats) {
        for (int bound = 0; bound <= options_.max_cost; ++bound) {
            std::vector<std::size_t> subset;
            if (auto found = dfs(0, bound, subset, relevant, stats)) return found;
            if (budget_exhausted_) return std::nullopt;
        }
        return std::nullopt;
    }

    std::optional<std::vector<std::size_t>> dfs(
        std::size_t from, int remaining_cost, std::vector<std::size_t>& subset,
        const std::vector<std::pair<std::size_t, bool>>& relevant, LearnStats& stats) {
        if (++stats.search_nodes > options_.search_budget) {
            budget_exhausted_ = true;
            return std::nullopt;
        }
        if (remaining_cost == 0) {
            if (consistent_with_relevant(subset, relevant, stats)) return subset;
            return std::nullopt;
        }
        if (static_cast<int>(subset.size()) >= options_.max_rules) return std::nullopt;
        for (std::size_t c = from; c < task_.space.candidates.size(); ++c) {
            int cost = task_.space.candidates[c].cost;
            if (cost > remaining_cost) {
                ++stats.pruned_branches;
                continue;
            }
            subset.push_back(c);
            if (auto found = dfs(c + 1, remaining_cost - cost, subset, relevant, stats)) return found;
            subset.pop_back();
            if (budget_exhausted_) return std::nullopt;
        }
        return std::nullopt;
    }

    const LearningTask& task_;
    const LearnOptions& options_;
    bool budget_exhausted_ = false;
};

}  // namespace

namespace {

void publish_stats(const LearnResult& result) {
    if (!obs::metrics_enabled()) return;
    auto& m = obs::metrics();
    static obs::Counter& runs = m.counter("ilp.learner.runs");
    static obs::Counter& found = m.counter("ilp.learner.hypotheses_found");
    static obs::Counter& candidates = m.counter("ilp.learner.candidates_scored");
    static obs::Counter& coverage = m.counter("ilp.learner.coverage_checks");
    static obs::Counter& nodes = m.counter("ilp.learner.search_nodes");
    static obs::Counter& pruned = m.counter("ilp.learner.pruned_branches");
    static obs::Counter& cegis = m.counter("ilp.learner.cegis_iterations");
    runs.add(1);
    if (result.found) found.add(1);
    candidates.add(result.stats.candidates);
    coverage.add(result.stats.coverage_checks);
    nodes.add(result.stats.search_nodes);
    pruned.add(result.stats.pruned_branches);
    cegis.add(result.stats.cegis_iterations);
}

}  // namespace

LearnResult learn(const LearningTask& task, const LearnOptions& options) {
    obs::ScopedSpan span("ilp.learn", "ilp");
    static obs::Histogram& time_hist = obs::metrics().histogram("ilp.learner.time_us");
    obs::ScopedTimer timer(time_hist);
    LearnResult result = options.allow_fast_path && task.space.constraints_only()
                             ? FastPathLearner(task, options).run()
                             : GeneralLearner(task, options).run();
    publish_stats(result);
    return result;
}

}  // namespace agenp::ilp
