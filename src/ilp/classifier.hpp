// SymbolicPolicyClassifier: the paper's GPM-as-classifier usage (Section
// IV.A, [25]): an ASG whose language, in a given context, is the set of
// requests the policy accepts. Learning from labelled (request, context)
// pairs is a context-dependent ASG learning task; prediction is language
// membership. This facade gives the symbolic learner the same
// fit/predict surface as the statistical baselines in ml/, so learning
// curves compare like for like.
#pragma once

#include "ilp/learner.hpp"

namespace agenp::ilp {

struct LabelledExample {
    cfg::TokenString request;
    asp::Program context;
    bool accepted = false;
};

class SymbolicPolicyClassifier {
public:
    SymbolicPolicyClassifier(asg::AnswerSetGrammar initial, HypothesisSpace space,
                             LearnOptions options = {})
        : initial_(std::move(initial)), space_(std::move(space)), options_(std::move(options)) {}

    // Learns a hypothesis from labelled examples. Returns false (leaving the
    // previous model in place) when no consistent hypothesis exists within
    // bounds — e.g. under label noise.
    bool fit(const std::vector<LabelledExample>& examples);

    // Membership of `request` in the learned (or initial, if fit never
    // succeeded) GPM's language under `context`.
    [[nodiscard]] bool predict(const cfg::TokenString& request, const asp::Program& context) const;

    [[nodiscard]] const LearnResult& last_result() const { return result_; }
    [[nodiscard]] const asg::AnswerSetGrammar& model() const { return learned_; }

private:
    asg::AnswerSetGrammar initial_;
    HypothesisSpace space_;
    LearnOptions options_;
    asg::AnswerSetGrammar learned_ = initial_;
    LearnResult result_;
};

}  // namespace agenp::ilp
