// The inductive learner: finds a minimal-cost H ⊆ S_M such that every
// positive example's string is in L(G(C):H) and no negative example's is
// (Definition 3).
//
// Two engines (DESIGN.md section 5):
//  - Fast path, used when S_M is constraint-only: answer sets of the base
//    program are computed once per example world (parse tree × answer set)
//    and candidate constraints are evaluated against those fixed models;
//    the search is then an exact branch-and-bound set cover over negative
//    examples' worlds, with positive examples' surviving-world masks as
//    side constraints.
//  - General path: CEGIS over a growing relevant-example set with an inner
//    iterative-deepening subset search; coverage checks run full ASG
//    membership with the hypothesis spliced in.
#pragma once

#include "asg/membership.hpp"
#include "ilp/task.hpp"

namespace agenp::ilp {

class SearchGuidance;  // ilp/guidance.hpp

struct LearnOptions {
    int max_rules = 4;        // hypothesis cardinality bound (general path)
    int max_cost = 24;        // total-cost bound
    std::size_t max_worlds_per_example = 32;  // answer sets enumerated per parse tree (fast path)
    bool allow_fast_path = true;
    std::size_t search_budget = 5'000'000;  // branch-and-bound node budget
    // Noise tolerance (fast path only): when > 0, each example may be
    // sacrificed — left uncovered (negative) or killed (positive) — at this
    // cost, and the learner minimizes rule cost + penalties (the paper's
    // example-weighting discussion, Section IV.C). 0 = strict Definition 3.
    int noise_penalty = 0;
    // Optional statistical search guidance (Section V.C): candidates with
    // higher predicted usefulness are branched on first. Exactness is
    // unaffected; only the node count is. Not owned.
    const SearchGuidance* guidance = nullptr;
    asg::MembershipOptions membership;
};

struct LearnStats {
    std::size_t candidates = 0;
    std::size_t coverage_checks = 0;   // membership / world evaluations
    std::size_t search_nodes = 0;
    std::size_t pruned_branches = 0;   // candidates skipped by the cost bound
    std::size_t cegis_iterations = 0;  // general path only
    bool used_fast_path = false;
    bool world_cap_hit = false;  // some example had more answer sets than enumerated
};

struct LearnResult {
    bool found = false;
    Hypothesis hypothesis;
    int cost = 0;  // rule cost + noise penalties (when noise_penalty > 0)
    // Examples left uncovered by the returned hypothesis (noisy mode only;
    // always 0 under strict Definition 3).
    std::size_t violated_examples = 0;
    LearnStats stats;
    std::string failure_reason;  // set when !found

    [[nodiscard]] std::string hypothesis_to_string() const;
};

LearnResult learn(const LearningTask& task, const LearnOptions& options = {});

}  // namespace agenp::ilp
