#include "ilp/classifier.hpp"

namespace agenp::ilp {

bool SymbolicPolicyClassifier::fit(const std::vector<LabelledExample>& examples) {
    LearningTask task;
    task.initial = initial_;
    task.space = space_;
    for (const auto& ex : examples) {
        (ex.accepted ? task.positive : task.negative).emplace_back(ex.request, ex.context);
    }
    result_ = learn(task, options_);
    if (result_.found) {
        learned_ = initial_.with_rules(result_.hypothesis);
    }
    return result_.found;
}

bool SymbolicPolicyClassifier::predict(const cfg::TokenString& request,
                                       const asp::Program& context) const {
    return asg::in_language(learned_, request, context, options_.membership);
}

}  // namespace agenp::ilp
