// Statistical guidance of the hypothesis search (Section V.C).
//
// "One can learn strategies to best search the hypothesis space": a
// statistical model — here the ml:: logistic regression — is trained on
// previously solved tasks to predict which candidate rules end up in final
// hypotheses, and the learner's branch-and-bound visits predicted-useful
// candidates first. Ordering never affects correctness or minimality (the
// search remains exact); it affects how quickly the bound tightens.
#pragma once

#include "ilp/learner.hpp"
#include "ml/logistic_regression.hpp"

namespace agenp::ilp {

class SearchGuidance {
public:
    SearchGuidance();

    // Accumulates training rows from a solved task: every candidate of the
    // task's space, labelled by membership in the final hypothesis.
    void record(const LearningTask& task, const LearnResult& result);

    // Fits the scorer; returns false when there is nothing to train on.
    bool train();

    [[nodiscard]] bool trained() const { return trained_; }
    [[nodiscard]] std::size_t observations() const { return data_.size(); }

    // Probability that `candidate` belongs to a final hypothesis.
    [[nodiscard]] double score(const Candidate& candidate) const;

    // Indices of `candidates` ordered most-promising-first (stable: ties
    // keep the original cost order).
    [[nodiscard]] std::vector<std::size_t> ranking(const std::vector<Candidate>& candidates) const;

    // Structural features of a candidate rule (exposed for tests).
    static std::vector<double> features(const Candidate& candidate);
    static std::vector<ml::FeatureSpec> feature_schema();

private:
    ml::Dataset data_;
    ml::LogisticRegression model_;
    bool trained_ = false;
};

}  // namespace agenp::ilp
