#!/usr/bin/env python3
"""Checks that relative markdown links in the repo docs resolve.

Walks every tracked *.md file (or the paths given on the command line),
extracts inline markdown links `[text](target)`, and verifies that each
relative target exists on disk. External links (http/https/mailto) and
pure in-page anchors (#...) are skipped; a `path#anchor` target is checked
for the path part only. Exits non-zero listing every broken link.

Usage:
    python3 scripts/check_doc_links.py [FILE.md ...]
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

# Inline links only; reference-style links are rare in this repo. The
# target group stops at the first ')' — the docs don't use nested parens
# in URLs.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def doc_files(argv: list[str]) -> list[Path]:
    if argv:
        return [Path(a) for a in argv]
    out = subprocess.run(
        ["git", "ls-files", "*.md", "**/*.md"],
        check=True,
        capture_output=True,
        text=True,
    )
    return [Path(line) for line in out.stdout.splitlines() if line]


def check_file(path: Path) -> list[str]:
    errors = []
    text = path.read_text(encoding="utf-8", errors="replace")
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue
            resolved = (path.parent / file_part).resolve()
            if not resolved.exists():
                errors.append(f"{path}:{lineno}: broken link -> {target}")
    return errors


def main() -> int:
    errors: list[str] = []
    files = doc_files(sys.argv[1:])
    for path in files:
        if not path.exists():
            errors.append(f"{path}: file not found")
            continue
        errors.extend(check_file(path))
    for error in errors:
        print(error)
    print(f"checked {len(files)} markdown files, {len(errors)} broken links")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
