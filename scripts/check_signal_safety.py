#!/usr/bin/env python3
"""Async-signal-safety checker for the SIGPROF sampling handler.

The CPU profiler (src/obs/prof.cpp) runs `agenp_prof_signal_handler` in
signal context at up to a few kHz. Anything it calls — directly or
transitively — must be async-signal-safe: no malloc, no locks, no stdio,
no C++ runtime entry points. The compiler cannot check this, and a
regression (someone adds a log line or a std::string to the handler path)
turns into a rare, unreproducible deadlock in production.

This script makes the property a CI gate. It disassembles the built
binary with objdump, extracts the static call graph (direct `call` and
cross-function `jmp` tail calls), computes the closure reachable from the
handler, and fails if the closure reaches any function outside a small
allowlist:

  - the handler itself and any local helpers the closure pulls in are
    fine *as long as* their own calls stay inside the closure rules;
  - `backtrace` (glibc, async-signal-safe after the lazy libgcc init that
    CpuProfiler::start primes outside signal context);
  - `__errno_location` (errno save/restore);
  - toolchain runtime shims that cannot block (stack protector, TLS
    address computation).

Indirect `call *reg` instructions inside the closure are hard failures —
the target cannot be proven safe statically. Indirect `jmp *` is reported
as a warning only: compilers emit those for switch jump tables whose
targets stay inside the same function.

Usage:
  check_signal_safety.py --binary build/src/agenp [--json report.json]

Exit codes: 0 = clean, 1 = violation found, 2 = could not analyze.
"""

from __future__ import annotations

import argparse
import json
import re
import subprocess
import sys

HANDLER_DEFAULT = "agenp_prof_signal_handler"

# Functions the handler closure may call without further analysis.
# Keep this list tiny and boring; additions need a DESIGN.md §12 note.
ALLOWED_CALLS = {
    "backtrace",  # glibc; primed outside signal context in CpuProfiler::start
    "__errno_location",  # errno save/restore
    "__stack_chk_fail",  # -fstack-protector epilogue; aborts, never returns
    "__tls_get_addr",  # TLS address computation (no allocation after startup)
    "abort",  # reached only via __stack_chk_fail; explicitly signal-safe
}

# `<symbol>` decorations objdump appends that don't change identity.
SUFFIX_RE = re.compile(r"(@plt|@GLIBC[^>]*|\.cold|\.part\.\d+|\.isra\.\d+|\.constprop\.\d+)+$")

FUNC_RE = re.compile(r"^[0-9a-f]+ <([^>]+)>:$")
# e.g. "  4010a3:\tcall   401050 <backtrace@plt>" or "\tjmp    40109e <f+0x1e>"
DIRECT_RE = re.compile(r"\b(call|jmp)[a-z]*\s+[0-9a-f]+\s+<([^>]+)>")
INDIRECT_RE = re.compile(r"\b(call|jmp)[a-z]*\s+\*")


def normalize(symbol: str) -> str:
    symbol = symbol.split("+", 1)[0]  # <func+0x1e> -> func
    return SUFFIX_RE.sub("", symbol)


def parse_call_graph(disassembly: str):
    """Returns (edges, indirect, plt_stubs) keyed by normalized function name.

    edges[f] is the set of normalized direct call/tail-call targets of f;
    indirect[f] is a list of (mnemonic, line) for `call *` / `jmp *`;
    plt_stubs holds functions that are PLT trampolines into a shared
    library — the analysis must stop at them (their `jmp *GOT` would
    otherwise read as a harmless indirect-jump warning).
    """
    edges: dict[str, set[str]] = {}
    indirect: dict[str, list[tuple[str, str]]] = {}
    plt_stubs: set[str] = set()
    current = None
    for line in disassembly.splitlines():
        match = FUNC_RE.match(line)
        if match:
            raw = match.group(1)
            current = normalize(raw)
            if "@plt" in raw:
                plt_stubs.add(current)
            edges.setdefault(current, set())
            continue
        if current is None:
            continue
        match = DIRECT_RE.search(line)
        if match:
            mnemonic, raw_target = match.groups()
            target = normalize(raw_target)
            # Intra-function jumps (loops, branches) are not call edges.
            if mnemonic.startswith("jmp") and target == current:
                continue
            if target != current or mnemonic.startswith("call"):
                edges[current].add(target)
            continue
        match = INDIRECT_RE.search(line)
        if match:
            indirect.setdefault(current, []).append((match.group(1), line.strip()))
    return edges, indirect, plt_stubs


def analyze(edges, indirect, plt_stubs, handler: str):
    """Walks the closure from `handler`; returns (closure, violations, warnings)."""
    violations = []
    warnings = []
    closure = []
    seen = {handler}
    queue = [handler]
    while queue:
        func = queue.pop()
        closure.append(func)
        if func not in edges:
            # Named but not disassembled here: an external (PLT) target.
            continue
        for mnemonic, line in indirect.get(func, []):
            finding = {"function": func, "instruction": line}
            if mnemonic.startswith("call"):
                violations.append({**finding, "kind": "indirect-call"})
            else:
                warnings.append({**finding, "kind": "indirect-jump"})
        for target in sorted(edges[func]):
            if target in ALLOWED_CALLS:
                continue
            if target in seen:
                continue
            seen.add(target)
            if target in edges and target not in plt_stubs:
                queue.append(target)  # local function: recurse into it
            else:
                # External (PLT stub or undisassembled): the boundary
                # itself must be allowlisted.
                violations.append(
                    {
                        "kind": "disallowed-call",
                        "function": func,
                        "target": target,
                    }
                )
    return closure, violations, warnings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--binary", required=True, help="linked binary containing the handler")
    parser.add_argument("--handler", default=HANDLER_DEFAULT)
    parser.add_argument("--objdump", default="objdump")
    parser.add_argument("--json", help="write a machine-readable report here")
    args = parser.parse_args()

    try:
        disassembly = subprocess.run(
            [args.objdump, "-d", "--no-show-raw-insn", args.binary],
            check=True,
            capture_output=True,
            text=True,
        ).stdout
    except (OSError, subprocess.CalledProcessError) as err:
        print(f"check_signal_safety: cannot disassemble {args.binary}: {err}", file=sys.stderr)
        return 2

    edges, indirect, plt_stubs = parse_call_graph(disassembly)
    if args.handler not in edges:
        print(
            f"check_signal_safety: handler {args.handler!r} not found in {args.binary} "
            "(profiler compiled out, or the symbol was renamed?)",
            file=sys.stderr,
        )
        return 2

    closure, violations, warnings = analyze(edges, indirect, plt_stubs, args.handler)

    report = {
        "binary": args.binary,
        "handler": args.handler,
        "closure": sorted(closure),
        "allowed": sorted(ALLOWED_CALLS),
        "violations": violations,
        "warnings": warnings,
    }
    if args.json:
        with open(args.json, "w", encoding="utf-8") as out:
            json.dump(report, out, indent=2)
            out.write("\n")

    for warning in warnings:
        print(f"warning: {warning['kind']} in {warning['function']}: {warning['instruction']}")
    if violations:
        print(f"check_signal_safety: {args.handler} reaches unsafe code:", file=sys.stderr)
        for violation in violations:
            if violation["kind"] == "disallowed-call":
                print(
                    f"  {violation['function']} calls {violation['target']} "
                    "(not in the async-signal-safe allowlist)",
                    file=sys.stderr,
                )
            else:
                print(
                    f"  {violation['function']}: {violation['instruction']} "
                    "(indirect call; target unprovable)",
                    file=sys.stderr,
                )
        return 1

    print(
        f"check_signal_safety: OK — closure of {args.handler} is "
        f"{len(closure)} function(s), all async-signal-safe"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
