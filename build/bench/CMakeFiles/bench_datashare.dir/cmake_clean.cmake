file(REMOVE_RECURSE
  "CMakeFiles/bench_datashare.dir/bench_datashare.cpp.o"
  "CMakeFiles/bench_datashare.dir/bench_datashare.cpp.o.d"
  "bench_datashare"
  "bench_datashare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_datashare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
