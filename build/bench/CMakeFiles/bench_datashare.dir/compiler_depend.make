# Empty compiler generated dependencies file for bench_datashare.
# This may be replaced when dependencies are built.
