# Empty compiler generated dependencies file for bench_fedlearn.
# This may be replaced when dependencies are built.
