file(REMOVE_RECURSE
  "CMakeFiles/bench_fedlearn.dir/bench_fedlearn.cpp.o"
  "CMakeFiles/bench_fedlearn.dir/bench_fedlearn.cpp.o.d"
  "bench_fedlearn"
  "bench_fedlearn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fedlearn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
