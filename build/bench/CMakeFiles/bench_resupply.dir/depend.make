# Empty dependencies file for bench_resupply.
# This may be replaced when dependencies are built.
