file(REMOVE_RECURSE
  "CMakeFiles/bench_resupply.dir/bench_resupply.cpp.o"
  "CMakeFiles/bench_resupply.dir/bench_resupply.cpp.o.d"
  "bench_resupply"
  "bench_resupply.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_resupply.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
