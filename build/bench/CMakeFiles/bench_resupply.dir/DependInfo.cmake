
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_resupply.cpp" "bench/CMakeFiles/bench_resupply.dir/bench_resupply.cpp.o" "gcc" "bench/CMakeFiles/bench_resupply.dir/bench_resupply.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/agenp_explain.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/agenp_scenarios.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/agenp_framework.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/agenp_nl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/agenp_xacml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/agenp_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/agenp_asg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/agenp_asp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/agenp_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/agenp_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/agenp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
