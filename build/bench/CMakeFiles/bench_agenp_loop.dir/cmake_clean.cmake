file(REMOVE_RECURSE
  "CMakeFiles/bench_agenp_loop.dir/bench_agenp_loop.cpp.o"
  "CMakeFiles/bench_agenp_loop.dir/bench_agenp_loop.cpp.o.d"
  "bench_agenp_loop"
  "bench_agenp_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_agenp_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
