# Empty compiler generated dependencies file for bench_agenp_loop.
# This may be replaced when dependencies are built.
