file(REMOVE_RECURSE
  "CMakeFiles/bench_neurosymbolic.dir/bench_neurosymbolic.cpp.o"
  "CMakeFiles/bench_neurosymbolic.dir/bench_neurosymbolic.cpp.o.d"
  "bench_neurosymbolic"
  "bench_neurosymbolic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_neurosymbolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
