# Empty compiler generated dependencies file for bench_neurosymbolic.
# This may be replaced when dependencies are built.
