file(REMOVE_RECURSE
  "CMakeFiles/bench_explain.dir/bench_explain.cpp.o"
  "CMakeFiles/bench_explain.dir/bench_explain.cpp.o.d"
  "bench_explain"
  "bench_explain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_explain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
