# Empty dependencies file for bench_cav_curves.
# This may be replaced when dependencies are built.
