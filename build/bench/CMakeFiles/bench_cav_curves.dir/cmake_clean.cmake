file(REMOVE_RECURSE
  "CMakeFiles/bench_cav_curves.dir/bench_cav_curves.cpp.o"
  "CMakeFiles/bench_cav_curves.dir/bench_cav_curves.cpp.o.d"
  "bench_cav_curves"
  "bench_cav_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cav_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
