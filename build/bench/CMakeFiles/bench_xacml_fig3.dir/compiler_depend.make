# Empty compiler generated dependencies file for bench_xacml_fig3.
# This may be replaced when dependencies are built.
