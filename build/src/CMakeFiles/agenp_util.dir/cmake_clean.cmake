file(REMOVE_RECURSE
  "CMakeFiles/agenp_util.dir/util/strings.cpp.o"
  "CMakeFiles/agenp_util.dir/util/strings.cpp.o.d"
  "CMakeFiles/agenp_util.dir/util/symbol.cpp.o"
  "CMakeFiles/agenp_util.dir/util/symbol.cpp.o.d"
  "CMakeFiles/agenp_util.dir/util/table.cpp.o"
  "CMakeFiles/agenp_util.dir/util/table.cpp.o.d"
  "libagenp_util.a"
  "libagenp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agenp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
