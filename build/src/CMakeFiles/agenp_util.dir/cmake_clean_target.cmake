file(REMOVE_RECURSE
  "libagenp_util.a"
)
