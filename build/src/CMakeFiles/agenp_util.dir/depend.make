# Empty dependencies file for agenp_util.
# This may be replaced when dependencies are built.
