
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cfg/earley.cpp" "src/CMakeFiles/agenp_cfg.dir/cfg/earley.cpp.o" "gcc" "src/CMakeFiles/agenp_cfg.dir/cfg/earley.cpp.o.d"
  "/root/repo/src/cfg/generate.cpp" "src/CMakeFiles/agenp_cfg.dir/cfg/generate.cpp.o" "gcc" "src/CMakeFiles/agenp_cfg.dir/cfg/generate.cpp.o.d"
  "/root/repo/src/cfg/grammar.cpp" "src/CMakeFiles/agenp_cfg.dir/cfg/grammar.cpp.o" "gcc" "src/CMakeFiles/agenp_cfg.dir/cfg/grammar.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/agenp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
