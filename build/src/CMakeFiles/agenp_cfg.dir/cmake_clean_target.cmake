file(REMOVE_RECURSE
  "libagenp_cfg.a"
)
