# Empty compiler generated dependencies file for agenp_cfg.
# This may be replaced when dependencies are built.
