# Empty dependencies file for agenp_cfg.
# This may be replaced when dependencies are built.
