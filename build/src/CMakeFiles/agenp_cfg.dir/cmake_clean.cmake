file(REMOVE_RECURSE
  "CMakeFiles/agenp_cfg.dir/cfg/earley.cpp.o"
  "CMakeFiles/agenp_cfg.dir/cfg/earley.cpp.o.d"
  "CMakeFiles/agenp_cfg.dir/cfg/generate.cpp.o"
  "CMakeFiles/agenp_cfg.dir/cfg/generate.cpp.o.d"
  "CMakeFiles/agenp_cfg.dir/cfg/grammar.cpp.o"
  "CMakeFiles/agenp_cfg.dir/cfg/grammar.cpp.o.d"
  "libagenp_cfg.a"
  "libagenp_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agenp_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
