file(REMOVE_RECURSE
  "libagenp_asg.a"
)
