file(REMOVE_RECURSE
  "CMakeFiles/agenp_asg.dir/asg/asg.cpp.o"
  "CMakeFiles/agenp_asg.dir/asg/asg.cpp.o.d"
  "CMakeFiles/agenp_asg.dir/asg/generate.cpp.o"
  "CMakeFiles/agenp_asg.dir/asg/generate.cpp.o.d"
  "CMakeFiles/agenp_asg.dir/asg/instantiate.cpp.o"
  "CMakeFiles/agenp_asg.dir/asg/instantiate.cpp.o.d"
  "CMakeFiles/agenp_asg.dir/asg/membership.cpp.o"
  "CMakeFiles/agenp_asg.dir/asg/membership.cpp.o.d"
  "libagenp_asg.a"
  "libagenp_asg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agenp_asg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
