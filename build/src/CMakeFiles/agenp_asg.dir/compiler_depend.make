# Empty compiler generated dependencies file for agenp_asg.
# This may be replaced when dependencies are built.
