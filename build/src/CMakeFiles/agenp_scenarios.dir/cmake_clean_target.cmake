file(REMOVE_RECURSE
  "libagenp_scenarios.a"
)
