file(REMOVE_RECURSE
  "CMakeFiles/agenp_scenarios.dir/scenarios/cav/cav.cpp.o"
  "CMakeFiles/agenp_scenarios.dir/scenarios/cav/cav.cpp.o.d"
  "CMakeFiles/agenp_scenarios.dir/scenarios/cav/perception.cpp.o"
  "CMakeFiles/agenp_scenarios.dir/scenarios/cav/perception.cpp.o.d"
  "CMakeFiles/agenp_scenarios.dir/scenarios/datashare/datashare.cpp.o"
  "CMakeFiles/agenp_scenarios.dir/scenarios/datashare/datashare.cpp.o.d"
  "CMakeFiles/agenp_scenarios.dir/scenarios/fedlearn/fedlearn.cpp.o"
  "CMakeFiles/agenp_scenarios.dir/scenarios/fedlearn/fedlearn.cpp.o.d"
  "CMakeFiles/agenp_scenarios.dir/scenarios/resupply/resupply.cpp.o"
  "CMakeFiles/agenp_scenarios.dir/scenarios/resupply/resupply.cpp.o.d"
  "libagenp_scenarios.a"
  "libagenp_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agenp_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
