# Empty dependencies file for agenp_scenarios.
# This may be replaced when dependencies are built.
