
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scenarios/cav/cav.cpp" "src/CMakeFiles/agenp_scenarios.dir/scenarios/cav/cav.cpp.o" "gcc" "src/CMakeFiles/agenp_scenarios.dir/scenarios/cav/cav.cpp.o.d"
  "/root/repo/src/scenarios/cav/perception.cpp" "src/CMakeFiles/agenp_scenarios.dir/scenarios/cav/perception.cpp.o" "gcc" "src/CMakeFiles/agenp_scenarios.dir/scenarios/cav/perception.cpp.o.d"
  "/root/repo/src/scenarios/datashare/datashare.cpp" "src/CMakeFiles/agenp_scenarios.dir/scenarios/datashare/datashare.cpp.o" "gcc" "src/CMakeFiles/agenp_scenarios.dir/scenarios/datashare/datashare.cpp.o.d"
  "/root/repo/src/scenarios/fedlearn/fedlearn.cpp" "src/CMakeFiles/agenp_scenarios.dir/scenarios/fedlearn/fedlearn.cpp.o" "gcc" "src/CMakeFiles/agenp_scenarios.dir/scenarios/fedlearn/fedlearn.cpp.o.d"
  "/root/repo/src/scenarios/resupply/resupply.cpp" "src/CMakeFiles/agenp_scenarios.dir/scenarios/resupply/resupply.cpp.o" "gcc" "src/CMakeFiles/agenp_scenarios.dir/scenarios/resupply/resupply.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/agenp_framework.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/agenp_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/agenp_xacml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/agenp_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/agenp_asg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/agenp_asp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/agenp_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/agenp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
