file(REMOVE_RECURSE
  "CMakeFiles/agenp_asp.dir/asp/atom.cpp.o"
  "CMakeFiles/agenp_asp.dir/asp/atom.cpp.o.d"
  "CMakeFiles/agenp_asp.dir/asp/consequences.cpp.o"
  "CMakeFiles/agenp_asp.dir/asp/consequences.cpp.o.d"
  "CMakeFiles/agenp_asp.dir/asp/ground_program.cpp.o"
  "CMakeFiles/agenp_asp.dir/asp/ground_program.cpp.o.d"
  "CMakeFiles/agenp_asp.dir/asp/grounder.cpp.o"
  "CMakeFiles/agenp_asp.dir/asp/grounder.cpp.o.d"
  "CMakeFiles/agenp_asp.dir/asp/parser.cpp.o"
  "CMakeFiles/agenp_asp.dir/asp/parser.cpp.o.d"
  "CMakeFiles/agenp_asp.dir/asp/program.cpp.o"
  "CMakeFiles/agenp_asp.dir/asp/program.cpp.o.d"
  "CMakeFiles/agenp_asp.dir/asp/rule.cpp.o"
  "CMakeFiles/agenp_asp.dir/asp/rule.cpp.o.d"
  "CMakeFiles/agenp_asp.dir/asp/solver.cpp.o"
  "CMakeFiles/agenp_asp.dir/asp/solver.cpp.o.d"
  "CMakeFiles/agenp_asp.dir/asp/stratify.cpp.o"
  "CMakeFiles/agenp_asp.dir/asp/stratify.cpp.o.d"
  "CMakeFiles/agenp_asp.dir/asp/term.cpp.o"
  "CMakeFiles/agenp_asp.dir/asp/term.cpp.o.d"
  "libagenp_asp.a"
  "libagenp_asp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agenp_asp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
