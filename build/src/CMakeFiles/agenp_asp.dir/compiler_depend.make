# Empty compiler generated dependencies file for agenp_asp.
# This may be replaced when dependencies are built.
