
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/asp/atom.cpp" "src/CMakeFiles/agenp_asp.dir/asp/atom.cpp.o" "gcc" "src/CMakeFiles/agenp_asp.dir/asp/atom.cpp.o.d"
  "/root/repo/src/asp/consequences.cpp" "src/CMakeFiles/agenp_asp.dir/asp/consequences.cpp.o" "gcc" "src/CMakeFiles/agenp_asp.dir/asp/consequences.cpp.o.d"
  "/root/repo/src/asp/ground_program.cpp" "src/CMakeFiles/agenp_asp.dir/asp/ground_program.cpp.o" "gcc" "src/CMakeFiles/agenp_asp.dir/asp/ground_program.cpp.o.d"
  "/root/repo/src/asp/grounder.cpp" "src/CMakeFiles/agenp_asp.dir/asp/grounder.cpp.o" "gcc" "src/CMakeFiles/agenp_asp.dir/asp/grounder.cpp.o.d"
  "/root/repo/src/asp/parser.cpp" "src/CMakeFiles/agenp_asp.dir/asp/parser.cpp.o" "gcc" "src/CMakeFiles/agenp_asp.dir/asp/parser.cpp.o.d"
  "/root/repo/src/asp/program.cpp" "src/CMakeFiles/agenp_asp.dir/asp/program.cpp.o" "gcc" "src/CMakeFiles/agenp_asp.dir/asp/program.cpp.o.d"
  "/root/repo/src/asp/rule.cpp" "src/CMakeFiles/agenp_asp.dir/asp/rule.cpp.o" "gcc" "src/CMakeFiles/agenp_asp.dir/asp/rule.cpp.o.d"
  "/root/repo/src/asp/solver.cpp" "src/CMakeFiles/agenp_asp.dir/asp/solver.cpp.o" "gcc" "src/CMakeFiles/agenp_asp.dir/asp/solver.cpp.o.d"
  "/root/repo/src/asp/stratify.cpp" "src/CMakeFiles/agenp_asp.dir/asp/stratify.cpp.o" "gcc" "src/CMakeFiles/agenp_asp.dir/asp/stratify.cpp.o.d"
  "/root/repo/src/asp/term.cpp" "src/CMakeFiles/agenp_asp.dir/asp/term.cpp.o" "gcc" "src/CMakeFiles/agenp_asp.dir/asp/term.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/agenp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
