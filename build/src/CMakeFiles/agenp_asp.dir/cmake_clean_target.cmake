file(REMOVE_RECURSE
  "libagenp_asp.a"
)
