file(REMOVE_RECURSE
  "CMakeFiles/agenp_cli.dir/cli/commands.cpp.o"
  "CMakeFiles/agenp_cli.dir/cli/commands.cpp.o.d"
  "libagenp_cli.a"
  "libagenp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agenp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
