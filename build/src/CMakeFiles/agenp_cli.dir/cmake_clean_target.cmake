file(REMOVE_RECURSE
  "libagenp_cli.a"
)
