# Empty dependencies file for agenp_cli.
# This may be replaced when dependencies are built.
