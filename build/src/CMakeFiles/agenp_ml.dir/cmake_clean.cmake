file(REMOVE_RECURSE
  "CMakeFiles/agenp_ml.dir/ml/dataset.cpp.o"
  "CMakeFiles/agenp_ml.dir/ml/dataset.cpp.o.d"
  "CMakeFiles/agenp_ml.dir/ml/decision_tree.cpp.o"
  "CMakeFiles/agenp_ml.dir/ml/decision_tree.cpp.o.d"
  "CMakeFiles/agenp_ml.dir/ml/knn.cpp.o"
  "CMakeFiles/agenp_ml.dir/ml/knn.cpp.o.d"
  "CMakeFiles/agenp_ml.dir/ml/logistic_regression.cpp.o"
  "CMakeFiles/agenp_ml.dir/ml/logistic_regression.cpp.o.d"
  "CMakeFiles/agenp_ml.dir/ml/metrics.cpp.o"
  "CMakeFiles/agenp_ml.dir/ml/metrics.cpp.o.d"
  "CMakeFiles/agenp_ml.dir/ml/naive_bayes.cpp.o"
  "CMakeFiles/agenp_ml.dir/ml/naive_bayes.cpp.o.d"
  "CMakeFiles/agenp_ml.dir/ml/one_vs_rest.cpp.o"
  "CMakeFiles/agenp_ml.dir/ml/one_vs_rest.cpp.o.d"
  "libagenp_ml.a"
  "libagenp_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agenp_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
