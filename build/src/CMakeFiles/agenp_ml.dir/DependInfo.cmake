
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/dataset.cpp" "src/CMakeFiles/agenp_ml.dir/ml/dataset.cpp.o" "gcc" "src/CMakeFiles/agenp_ml.dir/ml/dataset.cpp.o.d"
  "/root/repo/src/ml/decision_tree.cpp" "src/CMakeFiles/agenp_ml.dir/ml/decision_tree.cpp.o" "gcc" "src/CMakeFiles/agenp_ml.dir/ml/decision_tree.cpp.o.d"
  "/root/repo/src/ml/knn.cpp" "src/CMakeFiles/agenp_ml.dir/ml/knn.cpp.o" "gcc" "src/CMakeFiles/agenp_ml.dir/ml/knn.cpp.o.d"
  "/root/repo/src/ml/logistic_regression.cpp" "src/CMakeFiles/agenp_ml.dir/ml/logistic_regression.cpp.o" "gcc" "src/CMakeFiles/agenp_ml.dir/ml/logistic_regression.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/CMakeFiles/agenp_ml.dir/ml/metrics.cpp.o" "gcc" "src/CMakeFiles/agenp_ml.dir/ml/metrics.cpp.o.d"
  "/root/repo/src/ml/naive_bayes.cpp" "src/CMakeFiles/agenp_ml.dir/ml/naive_bayes.cpp.o" "gcc" "src/CMakeFiles/agenp_ml.dir/ml/naive_bayes.cpp.o.d"
  "/root/repo/src/ml/one_vs_rest.cpp" "src/CMakeFiles/agenp_ml.dir/ml/one_vs_rest.cpp.o" "gcc" "src/CMakeFiles/agenp_ml.dir/ml/one_vs_rest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/agenp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
