file(REMOVE_RECURSE
  "libagenp_ml.a"
)
