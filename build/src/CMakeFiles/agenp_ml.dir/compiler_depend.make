# Empty compiler generated dependencies file for agenp_ml.
# This may be replaced when dependencies are built.
