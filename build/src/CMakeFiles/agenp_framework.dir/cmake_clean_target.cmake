file(REMOVE_RECURSE
  "libagenp_framework.a"
)
