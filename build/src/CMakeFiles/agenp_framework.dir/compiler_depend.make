# Empty compiler generated dependencies file for agenp_framework.
# This may be replaced when dependencies are built.
