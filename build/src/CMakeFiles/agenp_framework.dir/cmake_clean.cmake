file(REMOVE_RECURSE
  "CMakeFiles/agenp_framework.dir/agenp/ams.cpp.o"
  "CMakeFiles/agenp_framework.dir/agenp/ams.cpp.o.d"
  "CMakeFiles/agenp_framework.dir/agenp/coalition.cpp.o"
  "CMakeFiles/agenp_framework.dir/agenp/coalition.cpp.o.d"
  "CMakeFiles/agenp_framework.dir/agenp/padap.cpp.o"
  "CMakeFiles/agenp_framework.dir/agenp/padap.cpp.o.d"
  "CMakeFiles/agenp_framework.dir/agenp/pbms.cpp.o"
  "CMakeFiles/agenp_framework.dir/agenp/pbms.cpp.o.d"
  "CMakeFiles/agenp_framework.dir/agenp/pcp.cpp.o"
  "CMakeFiles/agenp_framework.dir/agenp/pcp.cpp.o.d"
  "CMakeFiles/agenp_framework.dir/agenp/pdp.cpp.o"
  "CMakeFiles/agenp_framework.dir/agenp/pdp.cpp.o.d"
  "CMakeFiles/agenp_framework.dir/agenp/prep.cpp.o"
  "CMakeFiles/agenp_framework.dir/agenp/prep.cpp.o.d"
  "CMakeFiles/agenp_framework.dir/agenp/repository.cpp.o"
  "CMakeFiles/agenp_framework.dir/agenp/repository.cpp.o.d"
  "CMakeFiles/agenp_framework.dir/agenp/similarity.cpp.o"
  "CMakeFiles/agenp_framework.dir/agenp/similarity.cpp.o.d"
  "libagenp_framework.a"
  "libagenp_framework.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agenp_framework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
