
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/agenp/ams.cpp" "src/CMakeFiles/agenp_framework.dir/agenp/ams.cpp.o" "gcc" "src/CMakeFiles/agenp_framework.dir/agenp/ams.cpp.o.d"
  "/root/repo/src/agenp/coalition.cpp" "src/CMakeFiles/agenp_framework.dir/agenp/coalition.cpp.o" "gcc" "src/CMakeFiles/agenp_framework.dir/agenp/coalition.cpp.o.d"
  "/root/repo/src/agenp/padap.cpp" "src/CMakeFiles/agenp_framework.dir/agenp/padap.cpp.o" "gcc" "src/CMakeFiles/agenp_framework.dir/agenp/padap.cpp.o.d"
  "/root/repo/src/agenp/pbms.cpp" "src/CMakeFiles/agenp_framework.dir/agenp/pbms.cpp.o" "gcc" "src/CMakeFiles/agenp_framework.dir/agenp/pbms.cpp.o.d"
  "/root/repo/src/agenp/pcp.cpp" "src/CMakeFiles/agenp_framework.dir/agenp/pcp.cpp.o" "gcc" "src/CMakeFiles/agenp_framework.dir/agenp/pcp.cpp.o.d"
  "/root/repo/src/agenp/pdp.cpp" "src/CMakeFiles/agenp_framework.dir/agenp/pdp.cpp.o" "gcc" "src/CMakeFiles/agenp_framework.dir/agenp/pdp.cpp.o.d"
  "/root/repo/src/agenp/prep.cpp" "src/CMakeFiles/agenp_framework.dir/agenp/prep.cpp.o" "gcc" "src/CMakeFiles/agenp_framework.dir/agenp/prep.cpp.o.d"
  "/root/repo/src/agenp/repository.cpp" "src/CMakeFiles/agenp_framework.dir/agenp/repository.cpp.o" "gcc" "src/CMakeFiles/agenp_framework.dir/agenp/repository.cpp.o.d"
  "/root/repo/src/agenp/similarity.cpp" "src/CMakeFiles/agenp_framework.dir/agenp/similarity.cpp.o" "gcc" "src/CMakeFiles/agenp_framework.dir/agenp/similarity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/agenp_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/agenp_xacml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/agenp_asg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/agenp_asp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/agenp_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/agenp_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/agenp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
