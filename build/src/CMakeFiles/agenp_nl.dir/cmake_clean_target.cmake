file(REMOVE_RECURSE
  "libagenp_nl.a"
)
