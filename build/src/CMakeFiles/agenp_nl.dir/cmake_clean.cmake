file(REMOVE_RECURSE
  "CMakeFiles/agenp_nl.dir/nl/translate.cpp.o"
  "CMakeFiles/agenp_nl.dir/nl/translate.cpp.o.d"
  "libagenp_nl.a"
  "libagenp_nl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agenp_nl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
