# Empty dependencies file for agenp_nl.
# This may be replaced when dependencies are built.
