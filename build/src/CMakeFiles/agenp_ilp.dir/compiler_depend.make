# Empty compiler generated dependencies file for agenp_ilp.
# This may be replaced when dependencies are built.
