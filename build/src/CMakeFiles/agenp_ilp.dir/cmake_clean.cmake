file(REMOVE_RECURSE
  "CMakeFiles/agenp_ilp.dir/ilp/classifier.cpp.o"
  "CMakeFiles/agenp_ilp.dir/ilp/classifier.cpp.o.d"
  "CMakeFiles/agenp_ilp.dir/ilp/guidance.cpp.o"
  "CMakeFiles/agenp_ilp.dir/ilp/guidance.cpp.o.d"
  "CMakeFiles/agenp_ilp.dir/ilp/hypothesis_space.cpp.o"
  "CMakeFiles/agenp_ilp.dir/ilp/hypothesis_space.cpp.o.d"
  "CMakeFiles/agenp_ilp.dir/ilp/learner.cpp.o"
  "CMakeFiles/agenp_ilp.dir/ilp/learner.cpp.o.d"
  "libagenp_ilp.a"
  "libagenp_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agenp_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
