file(REMOVE_RECURSE
  "libagenp_ilp.a"
)
