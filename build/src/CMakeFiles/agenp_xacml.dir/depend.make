# Empty dependencies file for agenp_xacml.
# This may be replaced when dependencies are built.
