file(REMOVE_RECURSE
  "CMakeFiles/agenp_xacml.dir/xacml/attributes.cpp.o"
  "CMakeFiles/agenp_xacml.dir/xacml/attributes.cpp.o.d"
  "CMakeFiles/agenp_xacml.dir/xacml/evaluator.cpp.o"
  "CMakeFiles/agenp_xacml.dir/xacml/evaluator.cpp.o.d"
  "CMakeFiles/agenp_xacml.dir/xacml/generator.cpp.o"
  "CMakeFiles/agenp_xacml.dir/xacml/generator.cpp.o.d"
  "CMakeFiles/agenp_xacml.dir/xacml/learning_bridge.cpp.o"
  "CMakeFiles/agenp_xacml.dir/xacml/learning_bridge.cpp.o.d"
  "CMakeFiles/agenp_xacml.dir/xacml/policy.cpp.o"
  "CMakeFiles/agenp_xacml.dir/xacml/policy.cpp.o.d"
  "CMakeFiles/agenp_xacml.dir/xacml/quality_filter.cpp.o"
  "CMakeFiles/agenp_xacml.dir/xacml/quality_filter.cpp.o.d"
  "CMakeFiles/agenp_xacml.dir/xacml/text_format.cpp.o"
  "CMakeFiles/agenp_xacml.dir/xacml/text_format.cpp.o.d"
  "libagenp_xacml.a"
  "libagenp_xacml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agenp_xacml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
