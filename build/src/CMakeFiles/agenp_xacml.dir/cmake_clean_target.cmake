file(REMOVE_RECURSE
  "libagenp_xacml.a"
)
