
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xacml/attributes.cpp" "src/CMakeFiles/agenp_xacml.dir/xacml/attributes.cpp.o" "gcc" "src/CMakeFiles/agenp_xacml.dir/xacml/attributes.cpp.o.d"
  "/root/repo/src/xacml/evaluator.cpp" "src/CMakeFiles/agenp_xacml.dir/xacml/evaluator.cpp.o" "gcc" "src/CMakeFiles/agenp_xacml.dir/xacml/evaluator.cpp.o.d"
  "/root/repo/src/xacml/generator.cpp" "src/CMakeFiles/agenp_xacml.dir/xacml/generator.cpp.o" "gcc" "src/CMakeFiles/agenp_xacml.dir/xacml/generator.cpp.o.d"
  "/root/repo/src/xacml/learning_bridge.cpp" "src/CMakeFiles/agenp_xacml.dir/xacml/learning_bridge.cpp.o" "gcc" "src/CMakeFiles/agenp_xacml.dir/xacml/learning_bridge.cpp.o.d"
  "/root/repo/src/xacml/policy.cpp" "src/CMakeFiles/agenp_xacml.dir/xacml/policy.cpp.o" "gcc" "src/CMakeFiles/agenp_xacml.dir/xacml/policy.cpp.o.d"
  "/root/repo/src/xacml/quality_filter.cpp" "src/CMakeFiles/agenp_xacml.dir/xacml/quality_filter.cpp.o" "gcc" "src/CMakeFiles/agenp_xacml.dir/xacml/quality_filter.cpp.o.d"
  "/root/repo/src/xacml/text_format.cpp" "src/CMakeFiles/agenp_xacml.dir/xacml/text_format.cpp.o" "gcc" "src/CMakeFiles/agenp_xacml.dir/xacml/text_format.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/agenp_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/agenp_asg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/agenp_asp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/agenp_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/agenp_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/agenp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
