file(REMOVE_RECURSE
  "CMakeFiles/agenp_tool.dir/cli/main.cpp.o"
  "CMakeFiles/agenp_tool.dir/cli/main.cpp.o.d"
  "agenp"
  "agenp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agenp_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
