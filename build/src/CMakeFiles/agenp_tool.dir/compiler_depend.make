# Empty compiler generated dependencies file for agenp_tool.
# This may be replaced when dependencies are built.
