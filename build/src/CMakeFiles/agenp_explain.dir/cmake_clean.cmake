file(REMOVE_RECURSE
  "CMakeFiles/agenp_explain.dir/explain/attribution.cpp.o"
  "CMakeFiles/agenp_explain.dir/explain/attribution.cpp.o.d"
  "CMakeFiles/agenp_explain.dir/explain/counterfactual.cpp.o"
  "CMakeFiles/agenp_explain.dir/explain/counterfactual.cpp.o.d"
  "libagenp_explain.a"
  "libagenp_explain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agenp_explain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
