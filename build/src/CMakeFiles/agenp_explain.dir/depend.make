# Empty dependencies file for agenp_explain.
# This may be replaced when dependencies are built.
