file(REMOVE_RECURSE
  "libagenp_explain.a"
)
