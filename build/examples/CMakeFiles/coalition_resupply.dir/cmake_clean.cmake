file(REMOVE_RECURSE
  "CMakeFiles/coalition_resupply.dir/coalition_resupply.cpp.o"
  "CMakeFiles/coalition_resupply.dir/coalition_resupply.cpp.o.d"
  "coalition_resupply"
  "coalition_resupply.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coalition_resupply.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
