# Empty compiler generated dependencies file for coalition_resupply.
# This may be replaced when dependencies are built.
