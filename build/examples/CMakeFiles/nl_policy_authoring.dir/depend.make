# Empty dependencies file for nl_policy_authoring.
# This may be replaced when dependencies are built.
