file(REMOVE_RECURSE
  "CMakeFiles/nl_policy_authoring.dir/nl_policy_authoring.cpp.o"
  "CMakeFiles/nl_policy_authoring.dir/nl_policy_authoring.cpp.o.d"
  "nl_policy_authoring"
  "nl_policy_authoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nl_policy_authoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
