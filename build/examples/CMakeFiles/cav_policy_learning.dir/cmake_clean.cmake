file(REMOVE_RECURSE
  "CMakeFiles/cav_policy_learning.dir/cav_policy_learning.cpp.o"
  "CMakeFiles/cav_policy_learning.dir/cav_policy_learning.cpp.o.d"
  "cav_policy_learning"
  "cav_policy_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cav_policy_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
