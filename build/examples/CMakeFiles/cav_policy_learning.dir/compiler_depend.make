# Empty compiler generated dependencies file for cav_policy_learning.
# This may be replaced when dependencies are built.
