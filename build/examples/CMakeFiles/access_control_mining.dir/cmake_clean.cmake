file(REMOVE_RECURSE
  "CMakeFiles/access_control_mining.dir/access_control_mining.cpp.o"
  "CMakeFiles/access_control_mining.dir/access_control_mining.cpp.o.d"
  "access_control_mining"
  "access_control_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/access_control_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
