# Empty compiler generated dependencies file for access_control_mining.
# This may be replaced when dependencies are built.
