# Empty dependencies file for test_asp_core.
# This may be replaced when dependencies are built.
