file(REMOVE_RECURSE
  "CMakeFiles/test_asp_core.dir/test_asp_core.cpp.o"
  "CMakeFiles/test_asp_core.dir/test_asp_core.cpp.o.d"
  "test_asp_core"
  "test_asp_core.pdb"
  "test_asp_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_asp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
