file(REMOVE_RECURSE
  "CMakeFiles/test_asg.dir/test_asg.cpp.o"
  "CMakeFiles/test_asg.dir/test_asg.cpp.o.d"
  "test_asg"
  "test_asg.pdb"
  "test_asg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_asg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
