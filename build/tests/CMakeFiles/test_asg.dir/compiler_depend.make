# Empty compiler generated dependencies file for test_asg.
# This may be replaced when dependencies are built.
