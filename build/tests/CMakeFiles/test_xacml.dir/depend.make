# Empty dependencies file for test_xacml.
# This may be replaced when dependencies are built.
