file(REMOVE_RECURSE
  "CMakeFiles/test_xacml.dir/test_xacml.cpp.o"
  "CMakeFiles/test_xacml.dir/test_xacml.cpp.o.d"
  "test_xacml"
  "test_xacml.pdb"
  "test_xacml[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xacml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
