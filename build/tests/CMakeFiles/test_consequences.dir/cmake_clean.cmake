file(REMOVE_RECURSE
  "CMakeFiles/test_consequences.dir/test_consequences.cpp.o"
  "CMakeFiles/test_consequences.dir/test_consequences.cpp.o.d"
  "test_consequences"
  "test_consequences.pdb"
  "test_consequences[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_consequences.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
