# Empty compiler generated dependencies file for test_consequences.
# This may be replaced when dependencies are built.
