# Empty dependencies file for test_solver_reference.
# This may be replaced when dependencies are built.
