file(REMOVE_RECURSE
  "CMakeFiles/test_solver_reference.dir/test_solver_reference.cpp.o"
  "CMakeFiles/test_solver_reference.dir/test_solver_reference.cpp.o.d"
  "test_solver_reference"
  "test_solver_reference.pdb"
  "test_solver_reference[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_solver_reference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
