# Empty compiler generated dependencies file for test_grounder.
# This may be replaced when dependencies are built.
