file(REMOVE_RECURSE
  "CMakeFiles/test_grounder.dir/test_grounder.cpp.o"
  "CMakeFiles/test_grounder.dir/test_grounder.cpp.o.d"
  "test_grounder"
  "test_grounder.pdb"
  "test_grounder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grounder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
