file(REMOVE_RECURSE
  "CMakeFiles/test_asp_parser.dir/test_asp_parser.cpp.o"
  "CMakeFiles/test_asp_parser.dir/test_asp_parser.cpp.o.d"
  "test_asp_parser"
  "test_asp_parser.pdb"
  "test_asp_parser[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_asp_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
