# Empty compiler generated dependencies file for test_asp_parser.
# This may be replaced when dependencies are built.
