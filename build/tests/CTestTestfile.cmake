# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_asp_core[1]_include.cmake")
include("/root/repo/build/tests/test_asp_parser[1]_include.cmake")
include("/root/repo/build/tests/test_grounder[1]_include.cmake")
include("/root/repo/build/tests/test_solver[1]_include.cmake")
include("/root/repo/build/tests/test_consequences[1]_include.cmake")
include("/root/repo/build/tests/test_solver_reference[1]_include.cmake")
include("/root/repo/build/tests/test_cfg[1]_include.cmake")
include("/root/repo/build/tests/test_asg[1]_include.cmake")
include("/root/repo/build/tests/test_ilp[1]_include.cmake")
include("/root/repo/build/tests/test_ml[1]_include.cmake")
include("/root/repo/build/tests/test_xacml[1]_include.cmake")
include("/root/repo/build/tests/test_explain[1]_include.cmake")
include("/root/repo/build/tests/test_framework[1]_include.cmake")
include("/root/repo/build/tests/test_scenarios[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
include("/root/repo/build/tests/test_text_format[1]_include.cmake")
