#include <gtest/gtest.h>

#include <set>

#include "asp/parser.hpp"
#include "ilp/classifier.hpp"
#include "ilp/guidance.hpp"
#include "ilp/learner.hpp"

namespace agenp::ilp {
namespace {

using cfg::tokenize;

// ---------------------------------------------------------------------------
// Hypothesis-space generation
// ---------------------------------------------------------------------------

TEST(Space, GeneratesConstraintsFromBodyModes) {
    ModeBias bias;
    bias.body.push_back(ModeAtom("p", {ArgSpec::var("t")}, 1));
    bias.max_body_atoms = 1;
    bias.max_vars = 1;
    auto space = generate_space(bias, {0});
    ASSERT_EQ(space.candidates.size(), 1u);
    EXPECT_EQ(space.candidates[0].rule.to_string(), ":- p(V1)@1.");
    EXPECT_TRUE(space.constraints_only());
}

TEST(Space, ReplicatesOverTargetProductions) {
    ModeBias bias;
    bias.body.push_back(ModeAtom("p", {}));
    bias.max_body_atoms = 1;
    auto space = generate_space(bias, {0, 2, 5});
    ASSERT_EQ(space.candidates.size(), 3u);
    std::set<int> prods;
    for (const auto& c : space.candidates) prods.insert(c.production);
    EXPECT_EQ(prods, (std::set<int>{0, 2, 5}));
}

TEST(Space, ConstantPoolsExpand) {
    ModeBias bias;
    bias.body.push_back(ModeAtom("weather", {ArgSpec::constant("w")}));
    bias.add_symbol_constants("w", {"sunny", "rainy", "fog"});
    bias.max_body_atoms = 1;
    auto space = generate_space(bias, {0});
    EXPECT_EQ(space.candidates.size(), 3u);
}

TEST(Space, ComparisonsAgainstConstants) {
    ModeBias bias;
    bias.body.push_back(ModeAtom("loa", {ArgSpec::var("lvl")}));
    bias.comparisons.push_back(ComparisonMode("lvl", {asp::Comparison::Op::Lt}));
    bias.add_int_constants("lvl", {2, 3});
    bias.max_body_atoms = 1;
    bias.max_vars = 1;
    bias.max_comparisons = 1;
    auto space = generate_space(bias, {0});
    // Bare ":- loa(V1)." plus V1 < 2 and V1 < 3 variants.
    EXPECT_EQ(space.candidates.size(), 3u);
}

TEST(Space, VarVsVarComparisons) {
    ModeBias bias;
    bias.body.push_back(ModeAtom("a", {ArgSpec::var("n")}, 1));
    bias.body.push_back(ModeAtom("b", {ArgSpec::var("n")}, 2));
    bias.comparisons.push_back(ComparisonMode("n", {asp::Comparison::Op::Gt},
                                              /*var_vs_const=*/false, /*var_vs_var=*/true));
    bias.max_body_atoms = 2;
    bias.max_vars = 2;
    auto space = generate_space(bias, {0});
    bool found = false;
    for (const auto& c : space.candidates) {
        if (c.rule.to_string() == ":- a(V1)@1, b(V2)@2, V1 > V2.") found = true;
    }
    EXPECT_TRUE(found);
}

TEST(Space, NegatedBodyLiteralsWhenAllowed) {
    ModeBias bias;
    bias.body.push_back(ModeAtom("p", {}));
    bias.body.push_back(ModeAtom("q", {}, asp::kUnannotated, /*neg=*/true));
    bias.max_body_atoms = 2;
    auto space = generate_space(bias, {0});
    bool found_neg = false;
    for (const auto& c : space.candidates) {
        if (c.rule.to_string() == ":- p, not q.") found_neg = true;
        // A purely negative constraint body is unsafe only with variables;
        // ground ":- not q." is fine and should also exist.
        if (c.rule.to_string() == ":- not q.") found_neg = found_neg;
    }
    EXPECT_TRUE(found_neg);
}

TEST(Space, UnsafeRulesAreFiltered) {
    ModeBias bias;
    bias.body.push_back(ModeAtom("p", {ArgSpec::var("t")}, asp::kUnannotated, /*neg=*/true));
    bias.max_body_atoms = 1;
    bias.max_vars = 1;
    auto space = generate_space(bias, {0});
    // The positive variant ":- p(V1)." is safe and kept; the negated
    // variant ":- not p(V1)." is unsafe and must be filtered.
    ASSERT_EQ(space.candidates.size(), 1u);
    EXPECT_EQ(space.candidates[0].rule.to_string(), ":- p(V1).");
}

TEST(Space, HeadModesProduceNormalRules) {
    ModeBias bias;
    bias.allow_constraints = false;
    bias.head.push_back(ModeAtom("ok", {}));
    bias.body.push_back(ModeAtom("weather", {ArgSpec::constant("w")}));
    bias.add_symbol_constants("w", {"sunny", "rainy"});
    bias.max_body_atoms = 1;
    auto space = generate_space(bias, {0});
    ASSERT_EQ(space.candidates.size(), 2u);
    EXPECT_FALSE(space.constraints_only());
    EXPECT_EQ(space.candidates[0].rule.head->predicate.str(), "ok");
}

TEST(Space, AlphaEquivalentRulesAreDeduped) {
    ModeBias bias;
    bias.body.push_back(ModeAtom("p", {ArgSpec::var("t")}, 1));
    bias.max_body_atoms = 1;
    bias.max_vars = 3;  // three var indices all collapse to V1
    auto space = generate_space(bias, {0});
    EXPECT_EQ(space.candidates.size(), 1u);
}

TEST(Space, ThrowsWhenSpaceExplodes) {
    ModeBias bias;
    bias.body.push_back(ModeAtom("p", {ArgSpec::constant("c"), ArgSpec::constant("c"),
                                       ArgSpec::constant("c")}));
    for (int i = 0; i < 40; ++i) bias.add_int_constants("c", {i});
    bias.max_body_atoms = 2;
    SpaceLimits limits;
    limits.max_candidates = 1000;
    EXPECT_THROW(generate_space(bias, {0}, limits), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Learning (fast path: constraint-only spaces)
// ---------------------------------------------------------------------------

// Initial ASG: syntax only, no semantic conditions yet — the learner must
// discover them (the Figure 1 workflow).
const char* kTaskInitial = R"(
    request -> "do" task
    task -> "patrol" { requires(2). }
    task -> "strike" { requires(4). }
    task -> "observe" { requires(1). }
)";

ModeBias task_bias() {
    ModeBias bias;
    bias.body.push_back(ModeAtom("requires", {ArgSpec::var("lvl")}, 2));
    bias.body.push_back(ModeAtom("maxloa", {ArgSpec::var("lvl")}));
    bias.comparisons.push_back(ComparisonMode("lvl", {asp::Comparison::Op::Gt, asp::Comparison::Op::Lt},
                                              /*var_vs_const=*/false, /*var_vs_var=*/true));
    bias.max_body_atoms = 2;
    bias.max_vars = 2;
    bias.max_comparisons = 1;
    return bias;
}

LearningTask make_task() {
    LearningTask task;
    task.initial = asg::AnswerSetGrammar::parse(kTaskInitial);
    task.space = generate_space(task_bias(), {0});
    auto ctx = [](int m) { return asp::parse_program("maxloa(" + std::to_string(m) + ")."); };
    task.positive.emplace_back(tokenize("do patrol"), ctx(3));
    task.positive.emplace_back(tokenize("do strike"), ctx(5));
    task.positive.emplace_back(tokenize("do observe"), ctx(1));
    task.negative.emplace_back(tokenize("do strike"), ctx(3));
    task.negative.emplace_back(tokenize("do patrol"), ctx(1));
    return task;
}

TEST(Learner, RecoversLoaConstraint) {
    auto task = make_task();
    auto result = learn(task);
    ASSERT_TRUE(result.found) << result.failure_reason;
    EXPECT_TRUE(result.stats.used_fast_path);
    ASSERT_EQ(result.hypothesis.size(), 1u);
    // Either orientation of the same constraint is acceptable.
    auto text = result.hypothesis[0].first.to_string();
    EXPECT_TRUE(text == ":- requires(V1)@2, maxloa(V2), V1 > V2." ||
                text == ":- maxloa(V1), requires(V2)@2, V2 > V1." ||
                text == ":- maxloa(V1), requires(V2)@2, V1 < V2.")
        << text;
}

TEST(Learner, LearnedGrammarGeneralizes) {
    auto task = make_task();
    auto result = learn(task);
    ASSERT_TRUE(result.found);
    auto learned = task.initial.with_rules(result.hypothesis);
    // Held-out checks across contexts.
    for (int m = 1; m <= 5; ++m) {
        auto ctx = asp::parse_program("maxloa(" + std::to_string(m) + ").");
        EXPECT_EQ(asg::in_language(learned, tokenize("do patrol"), ctx), m >= 2) << m;
        EXPECT_EQ(asg::in_language(learned, tokenize("do strike"), ctx), m >= 4) << m;
        EXPECT_EQ(asg::in_language(learned, tokenize("do observe"), ctx), m >= 1) << m;
    }
}

TEST(Learner, EmptyHypothesisWhenNoNegatives) {
    auto task = make_task();
    task.negative.clear();
    auto result = learn(task);
    ASSERT_TRUE(result.found);
    EXPECT_TRUE(result.hypothesis.empty());
    EXPECT_EQ(result.cost, 0);
}

TEST(Learner, FailsWhenPositiveOutsideCfg) {
    auto task = make_task();
    task.positive.emplace_back(tokenize("do fly"), asp::Program{});
    auto result = learn(task);
    EXPECT_FALSE(result.found);
    EXPECT_FALSE(result.failure_reason.empty());
}

TEST(Learner, FailsOnContradictoryExamples) {
    auto task = make_task();
    // Same string, same context, both positive and negative.
    auto ctx = asp::parse_program("maxloa(3).");
    task.positive.emplace_back(tokenize("do patrol"), ctx);
    task.negative.emplace_back(tokenize("do patrol"), ctx);
    auto result = learn(task);
    EXPECT_FALSE(result.found);
}

TEST(Learner, PrefersMinimalCost) {
    // Negative example rejectable by a 1-literal constraint; a 2-literal
    // alternative also exists. Expect the cheap one.
    LearningTask task;
    task.initial = asg::AnswerSetGrammar::parse(R"(
        s -> "x" { p. q. }
        s -> "y" { q. }
    )");
    ModeBias bias;
    bias.body.push_back(ModeAtom("p", {}));
    bias.body.push_back(ModeAtom("q", {}));
    bias.max_body_atoms = 2;
    task.space = generate_space(bias, {0, 1});
    task.positive.emplace_back(tokenize("y"), asp::Program{});
    task.negative.emplace_back(tokenize("x"), asp::Program{});
    auto result = learn(task);
    ASSERT_TRUE(result.found);
    ASSERT_EQ(result.hypothesis.size(), 1u);
    EXPECT_EQ(result.hypothesis[0].first.to_string(), ":- p.");
    EXPECT_EQ(result.cost, 1);
}

TEST(Learner, MultipleConstraintsWhenOneCannotCover) {
    // Two negatives need two unrelated constraints.
    LearningTask task;
    task.initial = asg::AnswerSetGrammar::parse(R"(
        s -> "x" { a. }
        s -> "y" { b. }
        s -> "z" { c. }
    )");
    ModeBias bias;
    bias.body.push_back(ModeAtom("a", {}));
    bias.body.push_back(ModeAtom("b", {}));
    bias.body.push_back(ModeAtom("c", {}));
    bias.max_body_atoms = 1;
    task.space = generate_space(bias, {0, 1, 2});
    task.positive.emplace_back(tokenize("z"), asp::Program{});
    task.negative.emplace_back(tokenize("x"), asp::Program{});
    task.negative.emplace_back(tokenize("y"), asp::Program{});
    auto result = learn(task);
    ASSERT_TRUE(result.found);
    EXPECT_EQ(result.hypothesis.size(), 2u);
    std::set<std::string> rules;
    for (const auto& [r, p] : result.hypothesis) rules.insert(r.to_string());
    EXPECT_TRUE(rules.contains(":- a."));
    EXPECT_TRUE(rules.contains(":- b."));
}

TEST(Learner, RespectsAnswerSetSemanticsOnNegatives) {
    // The base annotation has two answer sets ({p} and {q}); rejecting the
    // string requires killing BOTH, which single constraint ":- p." cannot.
    LearningTask task;
    task.initial = asg::AnswerSetGrammar::parse(R"(
        s -> "x" {
            p :- not q.
            q :- not p.
        }
    )");
    ModeBias bias;
    bias.body.push_back(ModeAtom("p", {}));
    bias.body.push_back(ModeAtom("q", {}));
    bias.max_body_atoms = 1;
    task.space = generate_space(bias, {0});
    task.negative.emplace_back(tokenize("x"), asp::Program{});
    auto result = learn(task);
    ASSERT_TRUE(result.found) << result.failure_reason;
    // Needs both ":- p." and ":- q.".
    EXPECT_EQ(result.hypothesis.size(), 2u);
}

// ---------------------------------------------------------------------------
// Noise-tolerant learning (penalty-based fast path)
// ---------------------------------------------------------------------------

TEST(NoisyLearner, CleanDataMatchesStrictMode) {
    auto task = make_task();
    auto strict = learn(task);
    LearnOptions noisy;
    noisy.noise_penalty = 10;
    auto tolerant = learn(task, noisy);
    ASSERT_TRUE(strict.found);
    ASSERT_TRUE(tolerant.found);
    EXPECT_EQ(tolerant.violated_examples, 0u);
    EXPECT_EQ(tolerant.cost, strict.cost);
}

TEST(NoisyLearner, SurvivesContradictoryExamples) {
    auto task = make_task();
    auto ctx = asp::parse_program("maxloa(3).");
    task.positive.emplace_back(tokenize("do patrol"), ctx);
    task.negative.emplace_back(tokenize("do patrol"), ctx);  // contradiction
    EXPECT_FALSE(learn(task).found);
    LearnOptions noisy;
    noisy.noise_penalty = 5;
    auto tolerant = learn(task, noisy);
    ASSERT_TRUE(tolerant.found) << tolerant.failure_reason;
    EXPECT_EQ(tolerant.violated_examples, 1u);  // one side of the contradiction
}

TEST(NoisyLearner, SacrificesFlippedLabelAndRecoversPolicy) {
    auto task = make_task();
    // A single mislabelled positive: strike under maxloa(2) marked valid.
    task.positive.emplace_back(tokenize("do strike"), asp::parse_program("maxloa(2)."));
    EXPECT_FALSE(learn(task).found);
    LearnOptions noisy;
    noisy.noise_penalty = 6;  // cheaper to drop one example than to distort the policy
    auto tolerant = learn(task, noisy);
    ASSERT_TRUE(tolerant.found) << tolerant.failure_reason;
    EXPECT_EQ(tolerant.violated_examples, 1u);
    // The recovered model is the true LOA policy.
    auto learned = task.initial.with_rules(tolerant.hypothesis);
    EXPECT_FALSE(asg::in_language(learned, tokenize("do strike"), asp::parse_program("maxloa(2).")));
    EXPECT_TRUE(asg::in_language(learned, tokenize("do patrol"), asp::parse_program("maxloa(3).")));
}

TEST(NoisyLearner, LowPenaltyPrefersDroppingOverComplexRules) {
    // With a tiny penalty, abandoning all negatives beats learning rules.
    auto task = make_task();
    LearnOptions noisy;
    noisy.noise_penalty = 1;
    auto tolerant = learn(task, noisy);
    ASSERT_TRUE(tolerant.found);
    EXPECT_TRUE(tolerant.hypothesis.empty());
    EXPECT_EQ(tolerant.violated_examples, 2u);  // both negatives abandoned
}

TEST(NoisyLearner, WorldlessPositiveIsCountedViolated) {
    auto task = make_task();
    task.positive.emplace_back(tokenize("do fly"), asp::Program{});  // not even in the CFG
    EXPECT_FALSE(learn(task).found);
    LearnOptions noisy;
    noisy.noise_penalty = 8;
    auto tolerant = learn(task, noisy);
    ASSERT_TRUE(tolerant.found) << tolerant.failure_reason;
    EXPECT_EQ(tolerant.violated_examples, 1u);
}

// ---------------------------------------------------------------------------
// Learning (general path: normal rules in the space)
// ---------------------------------------------------------------------------

TEST(Learner, GeneralPathLearnsDefinition) {
    LearningTask task;
    task.initial = asg::AnswerSetGrammar::parse(R"(
        s -> "x" { :- not ok. }
    )");
    ModeBias bias;
    bias.allow_constraints = false;
    bias.head.push_back(ModeAtom("ok", {}));
    bias.body.push_back(ModeAtom("weather", {ArgSpec::constant("w")}));
    bias.add_symbol_constants("w", {"sunny", "rainy", "fog"});
    bias.max_body_atoms = 1;
    task.space = generate_space(bias, {0});
    task.positive.emplace_back(tokenize("x"), asp::parse_program("weather(sunny)."));
    task.negative.emplace_back(tokenize("x"), asp::parse_program("weather(rainy)."));
    task.negative.emplace_back(tokenize("x"), asp::parse_program("weather(fog)."));
    auto result = learn(task);
    ASSERT_TRUE(result.found) << result.failure_reason;
    EXPECT_FALSE(result.stats.used_fast_path);
    ASSERT_EQ(result.hypothesis.size(), 1u);
    EXPECT_EQ(result.hypothesis[0].first.to_string(), "ok :- weather(sunny).");
    EXPECT_GE(result.stats.cegis_iterations, 1u);
}

TEST(Learner, GeneralPathHonoursMaxRules) {
    LearningTask task;
    task.initial = asg::AnswerSetGrammar::parse(R"(
        s -> "x" { :- not ok. }
    )");
    ModeBias bias;
    bias.allow_constraints = false;
    bias.head.push_back(ModeAtom("ok", {}));
    bias.body.push_back(ModeAtom("w", {ArgSpec::constant("w")}));
    bias.add_symbol_constants("w", {"a", "b", "c"});
    bias.max_body_atoms = 1;
    task.space = generate_space(bias, {0});
    // Needs ok :- w(a) AND ok :- w(b): two rules.
    task.positive.emplace_back(tokenize("x"), asp::parse_program("w(a)."));
    task.positive.emplace_back(tokenize("x"), asp::parse_program("w(b)."));
    task.negative.emplace_back(tokenize("x"), asp::parse_program("w(c)."));
    LearnOptions options;
    options.max_rules = 1;
    auto restricted = learn(task, options);
    EXPECT_FALSE(restricted.found);
    options.max_rules = 2;
    auto full = learn(task, options);
    ASSERT_TRUE(full.found) << full.failure_reason;
    EXPECT_EQ(full.hypothesis.size(), 2u);
}

TEST(Learner, HypothesisAttachesToNonRootProduction) {
    // The constraint must live on the bracket production (production 0 of a
    // RECURSIVE grammar): it then fires at every nesting level, which a
    // root-only constraint could not express with local facts.
    LearningTask task;
    task.initial = asg::AnswerSetGrammar::parse(R"asg(
        s -> "(" s ")" {
            depth(N) :- depth(M)@2, N = M + 1.
        }
        s -> epsilon {
            depth(0).
        }
    )asg");
    ModeBias bias;
    bias.body.push_back(ModeAtom("depth", {ArgSpec::var("n")}));
    bias.body.push_back(ModeAtom("maxdepth", {ArgSpec::var("n")}));
    bias.comparisons.push_back(ComparisonMode("n", {asp::Comparison::Op::Gt},
                                              /*var_vs_const=*/false, /*var_vs_var=*/true));
    bias.max_body_atoms = 2;
    bias.max_vars = 2;
    task.space = generate_space(bias, {0});
    auto ctx = [](int d) { return asp::parse_program("maxdepth(" + std::to_string(d) + ")."); };
    task.positive.emplace_back(tokenize("( )"), ctx(1));
    task.positive.emplace_back(tokenize("( ( ) )"), ctx(2));
    task.negative.emplace_back(tokenize("( ( ) )"), ctx(1));
    auto result = learn(task);
    ASSERT_TRUE(result.found) << result.failure_reason;
    auto learned = task.initial.with_rules(result.hypothesis);
    // Generalizes to unseen depths.
    EXPECT_FALSE(asg::in_language(learned, tokenize("( ( ( ) ) )"), ctx(2)));
    EXPECT_TRUE(asg::in_language(learned, tokenize("( ( ( ) ) )"), ctx(3)));
}

TEST(Learner, ChoosesCorrectTargetProductionAmongSeveral) {
    // The same constraint rule is offered on two productions; only the
    // attachment to the "strike" production separates the examples.
    LearningTask task;
    task.initial = asg::AnswerSetGrammar::parse(R"(
        request -> "do" task
        task -> "patrol" { risky. }
        task -> "strike" { risky. }
    )");
    ModeBias bias;
    bias.body.push_back(ModeAtom("risky", {}));
    bias.max_body_atoms = 1;
    task.space = generate_space(bias, {1, 2});  // offered on both task productions
    task.positive.emplace_back(tokenize("do patrol"), asp::Program{});
    task.negative.emplace_back(tokenize("do strike"), asp::Program{});
    auto result = learn(task);
    ASSERT_TRUE(result.found) << result.failure_reason;
    ASSERT_EQ(result.hypothesis.size(), 1u);
    EXPECT_EQ(result.hypothesis[0].second, 2);  // attached to strike, not patrol
}

// ---------------------------------------------------------------------------
// Statistical search guidance (Section V.C)
// ---------------------------------------------------------------------------

TEST(Guidance, UntrainedScorerIsNeutral) {
    SearchGuidance guidance;
    EXPECT_FALSE(guidance.trained());
    Candidate c{asp::parse_rule(":- p."), 0, 1};
    EXPECT_DOUBLE_EQ(guidance.score(c), 0.5);
}

TEST(Guidance, FeaturesCaptureRuleShape) {
    Candidate c{asp::parse_rule(":- requires(L)@2, not maxloa(M), L > M."), 0, 3};
    auto f = SearchGuidance::features(c);
    ASSERT_EQ(f.size(), SearchGuidance::feature_schema().size());
    EXPECT_EQ(f[0], 3);  // cost
    EXPECT_EQ(f[1], 2);  // body literals
    EXPECT_EQ(f[2], 1);  // negatives
    EXPECT_EQ(f[3], 1);  // comparisons
    EXPECT_EQ(f[4], 2);  // distinct vars
    EXPECT_EQ(f[6], 1);  // annotated atoms
    EXPECT_EQ(f[7], 2);  // max annotation
}

TEST(Guidance, LearnsToPreferUsefulShapes) {
    // Train on several solved tasks; the scorer should rank the kind of
    // rule that keeps winning (2 literals + var-var comparison) above a
    // plain single-literal candidate.
    SearchGuidance guidance;
    for (int i = 0; i < 3; ++i) {
        auto task = make_task();
        auto result = learn(task);
        ASSERT_TRUE(result.found);
        guidance.record(task, result);
    }
    ASSERT_TRUE(guidance.train());
    EXPECT_GT(guidance.observations(), 10u);

    Candidate winner{asp::parse_rule(":- requires(V1)@2, maxloa(V2), V1 > V2."), 0, 3};
    Candidate loser{asp::parse_rule(":- maxloa(V1)."), 0, 1};
    EXPECT_GT(guidance.score(winner), guidance.score(loser));
}

TEST(Guidance, GuidedSearchFindsSameMinimalHypothesis) {
    SearchGuidance guidance;
    auto seed_task = make_task();
    auto seed = learn(seed_task);
    ASSERT_TRUE(seed.found);
    guidance.record(seed_task, seed);
    ASSERT_TRUE(guidance.train());

    auto task = make_task();
    LearnOptions guided;
    guided.guidance = &guidance;
    auto with = learn(task, guided);
    auto without = learn(task);
    ASSERT_TRUE(with.found);
    ASSERT_TRUE(without.found);
    EXPECT_EQ(with.cost, without.cost);  // exactness preserved
}

TEST(Guidance, RankingPutsHighScoresFirst) {
    SearchGuidance guidance;
    auto task = make_task();
    auto result = learn(task);
    ASSERT_TRUE(result.found);
    guidance.record(task, result);
    ASSERT_TRUE(guidance.train());
    auto order = guidance.ranking(task.space.candidates);
    ASSERT_EQ(order.size(), task.space.candidates.size());
    for (std::size_t i = 1; i < order.size(); ++i) {
        EXPECT_GE(guidance.score(task.space.candidates[order[i - 1]]),
                  guidance.score(task.space.candidates[order[i]]));
    }
}

// ---------------------------------------------------------------------------
// Classifier facade
// ---------------------------------------------------------------------------

TEST(Classifier, FitPredictRoundTrip) {
    auto initial = asg::AnswerSetGrammar::parse(kTaskInitial);
    auto space = generate_space(task_bias(), {0});
    SymbolicPolicyClassifier clf(initial, space);

    std::vector<LabelledExample> train;
    auto ctx = [](int m) { return asp::parse_program("maxloa(" + std::to_string(m) + ")."); };
    train.push_back({tokenize("do patrol"), ctx(3), true});
    train.push_back({tokenize("do strike"), ctx(3), false});
    train.push_back({tokenize("do strike"), ctx(5), true});
    train.push_back({tokenize("do observe"), ctx(1), true});
    train.push_back({tokenize("do patrol"), ctx(1), false});
    ASSERT_TRUE(clf.fit(train));

    EXPECT_TRUE(clf.predict(tokenize("do patrol"), ctx(2)));
    EXPECT_FALSE(clf.predict(tokenize("do strike"), ctx(2)));
    EXPECT_TRUE(clf.predict(tokenize("do strike"), ctx(4)));
}

TEST(Classifier, UnfittedModelUsesInitialGrammar) {
    auto initial = asg::AnswerSetGrammar::parse(kTaskInitial);
    SymbolicPolicyClassifier clf(initial, {});
    // No semantic conditions: everything syntactic is accepted.
    EXPECT_TRUE(clf.predict(tokenize("do strike"), asp::parse_program("maxloa(0).")));
}

}  // namespace
}  // namespace agenp::ilp
