#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "util/arena.hpp"

namespace agenp::util {
namespace {

TEST(Arena, AllocReturnsWritableAlignedMemory) {
    Arena arena;
    void* p = arena.alloc(64);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % alignof(std::max_align_t), 0u);
    std::memset(p, 0xAB, 64);  // ASan would flag an undersized allocation
    EXPECT_EQ(arena.bytes_allocated(), 64u);
    EXPECT_EQ(arena.chunk_count(), 1u);
}

TEST(Arena, HonorsExplicitAlignment) {
    Arena arena;
    arena.alloc(1, 1);  // knock the cursor off alignment
    for (std::size_t align : {2u, 4u, 8u, 16u, 32u, 64u}) {
        void* p = arena.alloc(8, align);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u) << "align " << align;
    }
}

TEST(Arena, ZeroSizedAllocationsAreDistinct) {
    Arena arena;
    void* a = arena.alloc(0);
    void* b = arena.alloc(0);
    EXPECT_NE(a, b);
}

TEST(Arena, GrowsIntoAdditionalChunks) {
    Arena arena(Arena::kDefaultChunkBytes);
    std::set<void*> seen;
    for (int i = 0; i < 100; ++i) {
        void* p = arena.alloc(4096);
        std::memset(p, i, 4096);
        EXPECT_TRUE(seen.insert(p).second) << "allocation " << i << " overlapped";
    }
    EXPECT_GT(arena.chunk_count(), 1u);
}

TEST(Arena, OversizedRequestGetsDedicatedChunk) {
    Arena arena;  // 64 KB chunks
    void* small = arena.alloc(16);
    void* big = arena.alloc(1 << 20);  // 1 MB, far over the chunk size
    std::memset(big, 0x5A, 1 << 20);
    // Later small allocations still work, and the arena never hands out
    // overlapping memory.
    void* after = arena.alloc(16);
    EXPECT_NE(small, after);
    EXPECT_NE(big, after);
    EXPECT_GE(arena.bytes_reserved(), std::size_t{1} << 20);
}

TEST(Arena, OversizedChunkStaysReachableAfterReset) {
    Arena arena;
    arena.alloc(1 << 20);
    std::size_t reserved = arena.bytes_reserved();
    arena.reset();
    // The next oversized request reuses the already-reserved big chunk
    // instead of mallocing another one.
    void* p = arena.alloc(1 << 20);
    std::memset(p, 0x33, 1 << 20);
    EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(Arena, ResetRecyclesChunksWithoutFreeing) {
    Arena arena;
    for (int i = 0; i < 50; ++i) arena.alloc(4096);
    std::size_t reserved = arena.bytes_reserved();
    std::size_t chunks = arena.chunk_count();
    arena.reset();
    EXPECT_EQ(arena.bytes_allocated(), 0u);
    EXPECT_EQ(arena.bytes_reserved(), reserved);
    EXPECT_EQ(arena.chunk_count(), chunks);
    // The recycled memory is fully writable again.
    for (int i = 0; i < 50; ++i) std::memset(arena.alloc(4096), i, 4096);
    EXPECT_EQ(arena.chunk_count(), chunks);  // no new chunks needed
    EXPECT_EQ(arena.resets(), 1u);
}

TEST(Arena, ReleaseFreesEverything) {
    Arena arena;
    arena.alloc(4096);
    arena.release();
    EXPECT_EQ(arena.chunk_count(), 0u);
    EXPECT_EQ(arena.bytes_reserved(), 0u);
    // Still usable afterwards.
    std::memset(arena.alloc(128), 1, 128);
}

TEST(Arena, ArenaVectorGrowsAndReadsBack) {
    Arena arena;
    ArenaVector<int> v{ArenaAllocator<int>(arena)};
    for (int i = 0; i < 10000; ++i) v.push_back(i);
    for (int i = 0; i < 10000; ++i) ASSERT_EQ(v[static_cast<std::size_t>(i)], i);
    // Deallocate is a no-op: growth left the old buffers in the arena.
    EXPECT_GT(arena.bytes_allocated(), 10000 * sizeof(int));
}

TEST(Arena, ArenaScopeResetsOnEntryAndExit) {
    Arena arena;
    arena.alloc(100);
    {
        ArenaScope scope(arena);
        EXPECT_EQ(arena.bytes_allocated(), 0u);  // reset on entry
        arena.alloc(200);
    }
    EXPECT_EQ(arena.bytes_allocated(), 0u);  // reset on exit
    EXPECT_EQ(arena.resets(), 2u);
}

TEST(Arena, RepeatedScopesReuseMemoryLikeTheGrounder) {
    // The grounder's usage shape: per-request scope, ArenaVector scratch,
    // repeat. After the first request warms the arena, later requests
    // should not grow the reservation.
    Arena arena;
    std::size_t reserved_after_first = 0;
    for (int request = 0; request < 20; ++request) {
        ArenaScope scope(arena);
        ArenaVector<std::uint64_t> scratch{ArenaAllocator<std::uint64_t>(arena)};
        for (std::uint64_t i = 0; i < 2000; ++i) scratch.push_back(i * i);
        ASSERT_EQ(scratch[1999], 1999ull * 1999ull);
        if (request == 0) reserved_after_first = arena.bytes_reserved();
    }
    EXPECT_EQ(arena.bytes_reserved(), reserved_after_first);
}

TEST(Arena, ThreadLocalGroundingArenaIsPerThread) {
    Arena* main_arena = &grounding_arena();
    Arena* other = nullptr;
    std::thread t([&] { other = &grounding_arena(); });
    t.join();
    EXPECT_NE(main_arena, nullptr);
    EXPECT_NE(other, nullptr);
    EXPECT_NE(main_arena, other);
}

}  // namespace
}  // namespace agenp::util
