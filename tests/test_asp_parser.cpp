#include <gtest/gtest.h>

#include "asp/parser.hpp"

namespace agenp::asp {
namespace {

TEST(Parser, ParsesFact) {
    Program p = parse_program("p(a, 1).");
    ASSERT_EQ(p.size(), 1u);
    EXPECT_TRUE(p.rules()[0].is_fact());
    EXPECT_EQ(p.rules()[0].head->to_string(), "p(a,1)");
}

TEST(Parser, ParsesZeroArityFact) {
    Program p = parse_program("rain.");
    ASSERT_EQ(p.size(), 1u);
    EXPECT_EQ(p.rules()[0].head->predicate.str(), "rain");
    EXPECT_TRUE(p.rules()[0].head->args.empty());
}

TEST(Parser, ParsesNormalRule) {
    Rule r = parse_rule("q(X) :- p(X, Y), not r(X).");
    ASSERT_TRUE(r.head.has_value());
    EXPECT_EQ(r.head->to_string(), "q(X)");
    ASSERT_EQ(r.body.size(), 2u);
    EXPECT_TRUE(r.body[0].positive);
    EXPECT_FALSE(r.body[1].positive);
    EXPECT_EQ(r.body[1].atom.to_string(), "r(X)");
}

TEST(Parser, ParsesConstraint) {
    Rule r = parse_rule(":- p(X), q(X).");
    EXPECT_TRUE(r.is_constraint());
    EXPECT_EQ(r.body.size(), 2u);
}

TEST(Parser, ParsesComparisons) {
    Rule r = parse_rule("q(X) :- p(X), X >= 3, X != 7.");
    ASSERT_EQ(r.builtins.size(), 2u);
    EXPECT_EQ(r.builtins[0].op, Comparison::Op::Ge);
    EXPECT_EQ(r.builtins[1].op, Comparison::Op::Ne);
}

TEST(Parser, ParsesArithmeticWithPrecedence) {
    Rule r = parse_rule("q(Z) :- p(X), Z = X + 2 * 3.");
    ASSERT_EQ(r.builtins.size(), 1u);
    // + is the outermost functor: X + (2*3)
    EXPECT_EQ(r.builtins[0].rhs.to_string(), "(X + (2 * 3))");
}

TEST(Parser, ParsesParenthesizedArithmetic) {
    Rule r = parse_rule("q(Z) :- p(X), Z = (X + 2) * 3.");
    EXPECT_EQ(r.builtins[0].rhs.to_string(), "((X + 2) * 3)");
}

TEST(Parser, ParsesNegativeIntegers) {
    Atom a = parse_atom("p(-4)");
    EXPECT_EQ(a.args[0].int_value(), -4);
}

TEST(Parser, ParsesAnnotatedAtom) {
    Atom a = parse_atom("holds(route)@2");
    EXPECT_EQ(a.annotation, 2);
    EXPECT_EQ(a.predicate.str(), "holds");
}

TEST(Parser, ParsesAnnotationInRuleBody) {
    Rule r = parse_rule(":- allowed@1, not granted(X)@2, p(X).");
    EXPECT_EQ(r.body[0].atom.annotation, 1);
    EXPECT_EQ(r.body[1].atom.annotation, 2);
    EXPECT_EQ(r.body[2].atom.annotation, kUnannotated);
}

TEST(Parser, ParsesCompoundTerms) {
    Atom a = parse_atom("edge(pair(a, b), 3)");
    ASSERT_EQ(a.args.size(), 2u);
    EXPECT_EQ(a.args[0].to_string(), "pair(a,b)");
}

TEST(Parser, ParsesQuotedConstants) {
    Atom a = parse_atom("role(\"senior admin\")");
    EXPECT_EQ(a.args[0].symbol().str(), "senior admin");
}

TEST(Parser, SkipsCommentsAndWhitespace) {
    Program p = parse_program(R"(
        % a comment
        p.  % trailing comment
        q :- p.
    )");
    EXPECT_EQ(p.size(), 2u);
}

TEST(Parser, MultiRuleProgramRoundTrips) {
    std::string text = "p(a).\nq(X) :- p(X), not r(X).\n:- q(b).\n";
    Program p = parse_program(text);
    EXPECT_EQ(p.to_string(), text);
}

TEST(Parser, ExpandsIntervalFacts) {
    Program p = parse_program("n(1..4).");
    EXPECT_EQ(p.size(), 4u);
    EXPECT_EQ(p.rules()[0].head->to_string(), "n(1)");
    EXPECT_EQ(p.rules()[3].head->to_string(), "n(4)");
}

TEST(Parser, ExpandsIntervalCartesianProduct) {
    Program p = parse_program("cell(1..2, 1..3).");
    EXPECT_EQ(p.size(), 6u);
}

TEST(Parser, IntervalKeepsOtherArguments) {
    Program p = parse_program("loa(car, 0..2).");
    EXPECT_EQ(p.size(), 3u);
    EXPECT_EQ(p.rules()[1].head->to_string(), "loa(car,1)");
}

TEST(Parser, SingletonIntervalIsOneFact) {
    Program p = parse_program("n(3..3).");
    EXPECT_EQ(p.size(), 1u);
}

TEST(Parser, RejectsIntervalOutsideFacts) {
    EXPECT_THROW(parse_program("q :- n(1..3)."), ParseError);
    EXPECT_THROW(parse_program("n(1..3) :- p."), ParseError);
    EXPECT_THROW(parse_program("p(f(1..3))."), ParseError);
}

TEST(Parser, RejectsBackwardsInterval) {
    EXPECT_THROW(parse_program("n(5..2)."), ParseError);
}

TEST(Parser, ErrorsOnUnterminatedRule) {
    EXPECT_THROW(parse_program("p(a)"), ParseError);
}

TEST(Parser, ErrorsOnBadToken) {
    EXPECT_THROW(parse_program("p($)."), ParseError);
}

TEST(Parser, ErrorsOnDanglingComma) {
    EXPECT_THROW(parse_program("q :- p, ."), ParseError);
}

TEST(Parser, ErrorsOnVariableHead) {
    EXPECT_THROW(parse_rule("X :- p."), ParseError);
}

TEST(Parser, ErrorsOnBadAnnotation) {
    EXPECT_THROW(parse_atom("p@0"), ParseError);
    EXPECT_THROW(parse_atom("p@x"), ParseError);
}

TEST(Parser, ParsesTermDirectly) {
    Term t = parse_term("f(X, g(1), -2)");
    EXPECT_EQ(t.to_string(), "f(X,g(1),-2)");
}

}  // namespace
}  // namespace agenp::asp
