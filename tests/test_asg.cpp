#include <gtest/gtest.h>

#include <set>

#include "asg/asg.hpp"
#include "asg/generate.hpp"
#include "asg/instantiate.hpp"
#include "asg/membership.hpp"
#include "asp/parser.hpp"

namespace agenp::asg {
namespace {

using cfg::tokenize;

// The a^n b^n grammar: sizes are computed recursively in the annotations and
// compared at the root — the canonical example of a non-context-free
// language carved out of a CFG by ASP conditions.
const char* kAnBn = R"(
    s -> as bs {
        :- size(N)@1, size(M)@2, N != M.
    }
    as -> "a" as {
        size(N) :- size(M)@2, N = M + 1.
    }
    as -> epsilon {
        size(0).
    }
    bs -> "b" bs {
        size(N) :- size(M)@2, N = M + 1.
    }
    bs -> epsilon {
        size(0).
    }
)";

// A coalition task-request ASG whose validity depends on a context-supplied
// autonomy ceiling (the CAV pattern from Section IV.A).
const char* kTaskAsg = R"(
    request -> "do" task {
        :- requires(L)@2, maxloa(M), L > M.
    }
    task -> "patrol" { requires(2). }
    task -> "strike" { requires(4). }
)";

TEST(AsgParse, ParsesProductionsAndAnnotations) {
    auto g = AnswerSetGrammar::parse(kTaskAsg);
    EXPECT_EQ(g.production_count(), 3u);
    EXPECT_EQ(g.grammar().start().str(), "request");
    EXPECT_EQ(g.annotation(0).size(), 1u);
    EXPECT_TRUE(g.annotation(0).rules()[0].is_constraint());
    EXPECT_EQ(g.annotation(1).rules()[0].head->to_string(), "requires(2)");
}

TEST(AsgParse, RejectsAnnotationBeyondArity) {
    EXPECT_THROW(AnswerSetGrammar::parse(R"(
        s -> "x" { :- p@2. }
    )"), AsgError);
}

TEST(AsgParse, RejectsAlternativeBars) {
    EXPECT_THROW(AnswerSetGrammar::parse("s -> \"x\" | \"y\""), AsgError);
}

TEST(AsgParse, RejectsUndefinedNonterminal) {
    EXPECT_THROW(AnswerSetGrammar::parse("s -> t"), AsgError);
}

TEST(AsgParse, AllowsCommentsAndBlankLines) {
    auto g = AnswerSetGrammar::parse(R"(
        # top-level comment
        s -> "x" {
            % ASP comment
            p.
        }
    )");
    EXPECT_EQ(g.production_count(), 1u);
    EXPECT_EQ(g.annotation(0).size(), 1u);
}

TEST(AsgParse, ToStringRoundTripsThroughParse) {
    auto g = AnswerSetGrammar::parse(kTaskAsg);
    auto reparsed = AnswerSetGrammar::parse(g.to_string());
    EXPECT_EQ(reparsed.production_count(), g.production_count());
    EXPECT_EQ(reparsed.to_string(), g.to_string());
}

TEST(Mangle, TraceFoldsIntoPredicateName) {
    EXPECT_EQ(mangle_predicate(util::Symbol("p"), {}).str(), "p@");
    EXPECT_EQ(mangle_predicate(util::Symbol("p"), {1, 2}).str(), "p@1.2");
}

TEST(Instantiate, RenamesAnnotatedAndLocalAtoms) {
    auto g = AnswerSetGrammar::parse(kTaskAsg);
    auto trees = cfg::parse_trees(g.grammar(), tokenize("do patrol"));
    ASSERT_EQ(trees.size(), 1u);
    auto program = instantiate(g, trees[0]);
    auto text = program.to_string();
    // Root constraint references child 2's namespace and its own (traces
    // are folded into the predicate names).
    EXPECT_NE(text.find(":- requires@2(L), maxloa@(M), L > M."), std::string::npos);
    // The task node's fact lands in namespace @2.
    EXPECT_NE(text.find("requires@2(2)."), std::string::npos);
}

TEST(Instantiate, ContextAddedAtEveryNode) {
    auto g = AnswerSetGrammar::parse(kTaskAsg);
    auto trees = cfg::parse_trees(g.grammar(), tokenize("do patrol"));
    auto program = instantiate(g, trees[0], asp::parse_program("maxloa(3)."));
    auto text = program.to_string();
    EXPECT_NE(text.find("maxloa@(3)."), std::string::npos);   // root namespace
    EXPECT_NE(text.find("maxloa@2(3)."), std::string::npos);  // task-node namespace
}

TEST(Membership, ContextControlsAcceptance) {
    auto g = AnswerSetGrammar::parse(kTaskAsg);
    auto ctx3 = asp::parse_program("maxloa(3).");
    auto ctx5 = asp::parse_program("maxloa(5).");
    EXPECT_TRUE(in_language(g, tokenize("do patrol"), ctx3));
    EXPECT_FALSE(in_language(g, tokenize("do strike"), ctx3));
    EXPECT_TRUE(in_language(g, tokenize("do strike"), ctx5));
}

TEST(Membership, NonCfgStringsAreRejectedOutright) {
    auto g = AnswerSetGrammar::parse(kTaskAsg);
    auto result = check_membership(g, tokenize("do fly"), asp::parse_program("maxloa(9)."));
    EXPECT_FALSE(result.in_language);
    EXPECT_EQ(result.trees_checked, 0);
}

TEST(Membership, AnBnLanguage) {
    auto g = AnswerSetGrammar::parse(kAnBn);
    EXPECT_TRUE(in_language(g, tokenize("")));
    EXPECT_TRUE(in_language(g, tokenize("a b")));
    EXPECT_TRUE(in_language(g, tokenize("a a a b b b")));
    EXPECT_FALSE(in_language(g, tokenize("a a b")));
    EXPECT_FALSE(in_language(g, tokenize("a b b")));
    EXPECT_FALSE(in_language(g, tokenize("b a")));
}

TEST(Membership, AnnotationChoiceNeedsOnlyOneAnswerSet) {
    // The annotation has two answer sets; one suffices for membership.
    auto g = AnswerSetGrammar::parse(R"(
        s -> "x" {
            p :- not q.
            q :- not p.
            :- q.
        }
    )");
    EXPECT_TRUE(in_language(g, tokenize("x")));
}

TEST(Membership, UnsatisfiableAnnotationRejects) {
    auto g = AnswerSetGrammar::parse(R"(
        s -> "x" { p. :- p. }
    )");
    EXPECT_FALSE(in_language(g, tokenize("x")));
}

TEST(Membership, AmbiguityAcceptsIfAnyTreeConsistent) {
    // Two parses of "x x x"; annotation kills only the left-heavy one
    // (the one whose FIRST child is itself a composite s s).
    auto g = AnswerSetGrammar::parse(R"(
        s -> s s {
            composite.
            :- composite@1.
        }
        s -> "x"
    )");
    EXPECT_TRUE(in_language(g, tokenize("x x x")));
}

TEST(Membership, MaxTreesCapCanMissAcceptingTree) {
    // Ambiguous grammar: the left-heavy tree is inconsistent, the
    // right-heavy one fine. With max_trees = 1 only one tree is examined,
    // so acceptance depends on the cap — documented approximation.
    auto g = AnswerSetGrammar::parse(R"(
        s -> s s {
            composite.
            :- composite@1.
        }
        s -> "x"
    )");
    MembershipOptions generous;
    generous.parse.max_trees = 16;
    EXPECT_TRUE(in_language(g, tokenize("x x x"), {}, generous));
    MembershipOptions capped;
    capped.parse.max_trees = 1;
    auto result = check_membership(g, tokenize("x x x"), {}, capped);
    EXPECT_EQ(result.trees_checked, 1);
}

TEST(WithRules, AddedConstraintNarrowsLanguage) {
    auto g = AnswerSetGrammar::parse(kTaskAsg);
    auto ctx = asp::parse_program("maxloa(9).");
    EXPECT_TRUE(in_language(g, tokenize("do strike"), ctx));
    // Learn-time addition: forbid tasks requiring more than 3 outright.
    auto g2 = g.with_rules({{asp::parse_rule(":- requires(L)@2, L > 3."), 0}});
    EXPECT_FALSE(in_language(g2, tokenize("do strike"), ctx));
    EXPECT_TRUE(in_language(g2, tokenize("do patrol"), ctx));
}

TEST(WithRules, RejectsBadProductionIndex) {
    auto g = AnswerSetGrammar::parse(kTaskAsg);
    EXPECT_THROW(g.with_rules({{asp::parse_rule(":- p."), 7}}), AsgError);
}

TEST(Language, EnumeratesContextDependentPolicies) {
    auto g = AnswerSetGrammar::parse(kTaskAsg);
    auto lang3 = language(g, asp::parse_program("maxloa(3)."));
    ASSERT_EQ(lang3.strings.size(), 1u);
    EXPECT_EQ(cfg::detokenize(lang3.strings[0]), "do patrol");
    auto lang9 = language(g, asp::parse_program("maxloa(9)."));
    EXPECT_EQ(lang9.strings.size(), 2u);
}

TEST(Language, AnBnEnumerationMatchesMembership) {
    auto g = AnswerSetGrammar::parse(kAnBn);
    LanguageOptions options;
    options.enumeration.max_strings = 200;
    options.enumeration.max_length = 8;
    auto lang = language(g, {}, options);
    std::set<std::string> sentences;
    for (const auto& s : lang.strings) sentences.insert(cfg::detokenize(s));
    EXPECT_TRUE(sentences.contains(""));
    EXPECT_TRUE(sentences.contains("a b"));
    EXPECT_TRUE(sentences.contains("a a b b"));
    EXPECT_FALSE(sentences.contains("a"));
    EXPECT_FALSE(sentences.contains("a a b"));
}

TEST(SolveTree, ExposesAnswerSetsForLearner) {
    auto g = AnswerSetGrammar::parse(kTaskAsg);
    auto trees = cfg::parse_trees(g.grammar(), tokenize("do patrol"));
    ASSERT_EQ(trees.size(), 1u);
    auto solved = solve_tree(g, trees[0], asp::parse_program("maxloa(3)."));
    ASSERT_TRUE(solved.satisfiable());
}

// Nested bracket grammar whose per-level depth is checked against a
// context-supplied ceiling — exercises deep traces (@1.2.2...), recursive
// annotation rules, and context distribution to every node.
const char* kBrackets = R"asg(
    s -> "(" s ")" {
        depth(N) :- depth(M)@2, N = M + 1.
        :- depth(N), maxdepth(D), N > D.
    }
    s -> epsilon {
        depth(0).
    }
)asg";

TEST(Membership, NestingDepthGatedByContext) {
    auto g = AnswerSetGrammar::parse(kBrackets);
    auto ctx = [](int d) { return asp::parse_program("maxdepth(" + std::to_string(d) + ")."); };
    EXPECT_TRUE(in_language(g, tokenize("( )"), ctx(1)));
    EXPECT_FALSE(in_language(g, tokenize("( ( ) )"), ctx(1)));
    EXPECT_TRUE(in_language(g, tokenize("( ( ) )"), ctx(2)));
    EXPECT_TRUE(in_language(g, tokenize(""), ctx(0)));
    EXPECT_FALSE(in_language(g, tokenize("( )"), ctx(0)));
}

TEST(Instantiate, DeepTracesAreNamespaced) {
    auto g = AnswerSetGrammar::parse(kBrackets);
    auto trees = cfg::parse_trees(g.grammar(), tokenize("( ( ) )"));
    ASSERT_EQ(trees.size(), 1u);
    auto program = instantiate(g, trees[0]);
    auto text = program.to_string();
    // The inner s sits at trace [2]; its child s at [2,2].
    EXPECT_NE(text.find("depth@2(N) :- depth@2.2(M), N = (M + 1)."), std::string::npos);
    EXPECT_NE(text.find("depth@2.2(0)."), std::string::npos);
}

TEST(Membership, DepthSweepMatchesClosedForm) {
    auto g = AnswerSetGrammar::parse(kBrackets);
    for (int depth = 0; depth <= 4; ++depth) {
        cfg::TokenString s;
        for (int i = 0; i < depth; ++i) s.emplace_back("(");
        for (int i = 0; i < depth; ++i) s.emplace_back(")");
        for (int ceiling = 0; ceiling <= 4; ++ceiling) {
            auto ctx = asp::parse_program("maxdepth(" + std::to_string(ceiling) + ").");
            EXPECT_EQ(in_language(g, s, ctx), depth <= ceiling)
                << "depth=" << depth << " ceiling=" << ceiling;
        }
    }
}

// Property sweep over a^n b^m: accepted iff n == m.
class AnBnSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(AnBnSweep, AcceptIffBalanced) {
    auto [n, m] = GetParam();
    auto g = AnswerSetGrammar::parse(kAnBn);
    cfg::TokenString s;
    for (int i = 0; i < n; ++i) s.emplace_back("a");
    for (int i = 0; i < m; ++i) s.emplace_back("b");
    EXPECT_EQ(in_language(g, s), n == m);
}

INSTANTIATE_TEST_SUITE_P(Sweep, AnBnSweep,
                         ::testing::Values(std::pair{0, 0}, std::pair{1, 1}, std::pair{4, 4},
                                           std::pair{2, 3}, std::pair{3, 2}, std::pair{5, 0},
                                           std::pair{0, 5}));

}  // namespace
}  // namespace agenp::asg
