#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "asp/parser.hpp"
#include "cli/commands.hpp"

namespace agenp::cli {
namespace {

// Writes a temp file and returns its path (unique per test via counter).
std::string temp_file(const std::string& name, const std::string& content) {
    std::string path = std::string(::testing::TempDir()) + "/agenp_" + name;
    std::ofstream out(path);
    out << content;
    return path;
}

const char* kTaskText = R"task(
#grammar
request -> "do" task
task -> "patrol" { requires(2). }
task -> "strike" { requires(4). }
task -> "observe" { requires(1). }
#bias
body requires var(lvl) @2
body maxloa var(lvl)
compare lvl gt varvar
max_body 2
max_vars 2
#positive
do patrol | maxloa(3).
do strike | maxloa(5).
do observe | maxloa(1).
#negative
do strike | maxloa(3).
do patrol | maxloa(1).
)task";

TEST(TaskFile, ParsesSectionsAndExamples) {
    auto task = parse_task_file(kTaskText);
    EXPECT_EQ(task.initial.production_count(), 4u);
    EXPECT_GT(task.space.candidates.size(), 0u);
    EXPECT_EQ(task.positive.size(), 3u);
    EXPECT_EQ(task.negative.size(), 2u);
    EXPECT_EQ(cfg::detokenize(task.positive[0].string), "do patrol");
    EXPECT_EQ(task.positive[0].context.size(), 1u);
}

TEST(TaskFile, LearnsFromParsedTask) {
    auto task = parse_task_file(kTaskText);
    auto result = ilp::learn(task);
    ASSERT_TRUE(result.found) << result.failure_reason;
    EXPECT_EQ(result.hypothesis.size(), 1u);
}

TEST(TaskFile, RejectsMissingSections) {
    EXPECT_THROW(parse_task_file("#grammar\ns -> \"x\"\n"), CliError);
    EXPECT_THROW(parse_task_file("stray line\n"), CliError);
}

TEST(TaskFile, RejectsBadBiasDirectives) {
    EXPECT_THROW(parse_task_file(R"(
#grammar
s -> "x"
#bias
frobnicate everything
)"), CliError);
    EXPECT_THROW(parse_task_file(R"(
#grammar
s -> "x"
#bias
compare lvl frob
)"), CliError);
}

TEST(TaskFile, HeadAndConstDirectives) {
    auto task = parse_task_file(R"(
#grammar
s -> "x"
#bias
no_constraints
head ok
body weather const(w)
const w sunny rainy
max_body 1
)");
    EXPECT_FALSE(task.space.constraints_only());
    EXPECT_EQ(task.space.candidates.size(), 2u);
}

TEST(CmdSolve, PrintsAnswerSets) {
    auto path = temp_file("solve.lp", "a :- not b. b :- not a. :- b.");
    std::ostringstream out;
    EXPECT_EQ(cmd_solve(path, 0, out), 0);
    EXPECT_NE(out.str().find("answer set 1: a"), std::string::npos);
}

TEST(CmdSolve, UnsatisfiableExitsNonzero) {
    auto path = temp_file("unsat.lp", "p. :- p.");
    std::ostringstream out;
    EXPECT_EQ(cmd_solve(path, 1, out), 1);
    EXPECT_NE(out.str().find("UNSATISFIABLE"), std::string::npos);
}

TEST(CmdMembership, AcceptsAndRejects) {
    auto grammar = temp_file("g.asg", R"(
request -> "do" task
task -> "patrol" { requires(2). :- requires(L), maxloa(M), L > M. }
task -> "strike" { requires(4). :- requires(L), maxloa(M), L > M. }
)");
    auto context = temp_file("ctx.lp", "maxloa(3).");
    std::ostringstream out;
    EXPECT_EQ(cmd_membership(grammar, "do patrol", context, out), 0);
    EXPECT_NE(out.str().find("ACCEPTED"), std::string::npos);
    std::ostringstream out2;
    EXPECT_EQ(cmd_membership(grammar, "do strike", context, out2), 1);
    EXPECT_NE(out2.str().find("REJECTED"), std::string::npos);
}

TEST(CmdGenerate, ListsLanguage) {
    auto grammar = temp_file("g2.asg", R"(
request -> "do" task
task -> "patrol" { requires(2). :- requires(L), maxloa(M), L > M. }
task -> "strike" { requires(4). :- requires(L), maxloa(M), L > M. }
)");
    auto context = temp_file("ctx2.lp", "maxloa(3).");
    std::ostringstream out;
    EXPECT_EQ(cmd_generate(grammar, context, 100, out), 0);
    EXPECT_NE(out.str().find("do patrol"), std::string::npos);
    EXPECT_EQ(out.str().find("do strike"), std::string::npos);
}

TEST(CmdLearn, LearnsAndWritesGrammar) {
    auto task = temp_file("task.agenp", kTaskText);
    std::string out_path = std::string(::testing::TempDir()) + "/agenp_learned.asg";
    std::ostringstream out;
    EXPECT_EQ(cmd_learn(task, out_path, out), 0);
    EXPECT_NE(out.str().find("hypothesis (cost"), std::string::npos);
    // The written grammar re-parses and enforces the learned policy.
    auto learned = asg::AnswerSetGrammar::parse(read_file(out_path));
    EXPECT_FALSE(asg::in_language(learned, cfg::tokenize("do strike"),
                                  asp::parse_program("maxloa(3).")));
    EXPECT_TRUE(asg::in_language(learned, cfg::tokenize("do patrol"),
                                 asp::parse_program("maxloa(3).")));
}

TEST(CmdEvaluate, PermitAndDenyWithExitCodes) {
    auto schema_path = temp_file("s.xs", R"(
schema toy
attr role subject categorical admin user
attr hour environment numeric 0 5
)");
    auto policy_path = temp_file("p.xp", R"(
policy toy deny-overrides
target any
rule d deny role=user hour<2
rule ok permit any
)");
    std::ostringstream out;
    EXPECT_EQ(cmd_evaluate(schema_path, policy_path, "role=admin hour=1", out), 0);
    EXPECT_NE(out.str().find("Permit"), std::string::npos);
    std::ostringstream out2;
    EXPECT_EQ(cmd_evaluate(schema_path, policy_path, "role=user hour=1", out2), 1);
    EXPECT_NE(out2.str().find("Deny"), std::string::npos);
}

TEST(Run, DispatchesAndReportsUsage) {
    std::ostringstream out, err;
    EXPECT_EQ(run({}, out, err), 2);
    EXPECT_NE(err.str().find("usage"), std::string::npos);
    std::ostringstream out2, err2;
    EXPECT_EQ(run({"frob"}, out2, err2), 2);
    std::ostringstream out3, err3;
    EXPECT_EQ(run({"solve"}, out3, err3), 2);  // missing file argument
}

TEST(Run, EndToEndSolve) {
    auto path = temp_file("e2e.lp", "p. q :- p.");
    std::ostringstream out, err;
    EXPECT_EQ(run({"solve", path, "--models", "1"}, out, err), 0);
    EXPECT_NE(out.str().find("p q"), std::string::npos);
}

TEST(Run, QuickstartRunsFullLoop) {
    std::ostringstream out, err;
    EXPECT_EQ(run({"quickstart"}, out, err), 0);
    EXPECT_NE(out.str().find("ASP warm-up: 8 answer sets"), std::string::npos);
    EXPECT_NE(out.str().find("PAdaP adopted GPM v1"), std::string::npos);
    EXPECT_NE(out.str().find("do patrol -> Permit"), std::string::npos);
    EXPECT_NE(out.str().find("do strike -> Deny"), std::string::npos);
    // Without --stats there is no metrics dump.
    EXPECT_EQ(out.str().find("--- metrics ---"), std::string::npos);
}

TEST(Run, StatsFlagDumpsNonzeroTelemetry) {
    std::ostringstream out, err;
    EXPECT_EQ(run({"quickstart", "--stats"}, out, err), 0);
    const auto& text = out.str();
    // The warm-up program branches, so solver decisions are nonzero.
    EXPECT_EQ(text.find("(0 decisions"), std::string::npos);
    EXPECT_NE(text.find("--- metrics ---"), std::string::npos);
    for (const char* metric :
         {"asp.solver.decisions", "asp.solver.propagations", "ilp.learner.runs",
          "agenp.pdp.decisions", "agenp.prep.refreshes", "asg.membership.checks"}) {
        EXPECT_NE(text.find(metric), std::string::npos) << metric;
    }
    // Per-phase AGENP latency histograms are present.
    for (const char* hist : {"agenp.padap.time_us", "agenp.prep.time_us", "agenp.pdp.time_us"}) {
        EXPECT_NE(text.find(hist), std::string::npos) << hist;
    }
}

TEST(Run, TraceOutWritesChromeTraceJson) {
    std::string path = std::string(::testing::TempDir()) + "/agenp_trace.json";
    std::ostringstream out, err;
    EXPECT_EQ(run({"quickstart", "--trace-out=" + path}, out, err), 0);
    EXPECT_NE(out.str().find("trace written to"), std::string::npos);
    auto json = read_file(path);
    // Structural spot-checks; full JSON validation lives in test_obs.
    ASSERT_FALSE(json.empty());
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("asp.solve"), std::string::npos);
    EXPECT_NE(json.find("agenp.padap.adapt"), std::string::npos);
    // The flat profile accompanies the trace on stdout.
    EXPECT_NE(out.str().find("agenp.pdp.decide"), std::string::npos);
}

TEST(Run, StatsFlagWorksOnSolveToo) {
    auto path = temp_file("stats.lp", "a :- not b. b :- not a.");
    std::ostringstream out, err;
    EXPECT_EQ(run({"solve", path, "--models", "0", "--stats"}, out, err), 0);
    EXPECT_NE(out.str().find("--- metrics ---"), std::string::npos);
    EXPECT_NE(out.str().find("asp.solver.solves"), std::string::npos);
}

TEST(ReadFile, ThrowsOnMissing) {
    EXPECT_THROW(read_file("/nonexistent/definitely_missing"), CliError);
}

// --- serve-mode control lines ---

const char* kServeGrammar = R"asg(
request -> "do" task {
  :- requires(L)@2, maxloa(M), L > M.
}
task -> "patrol" { requires(2). }
task -> "strike" { requires(5). }
)asg";

TEST(CmdServe, ControlLinesReportStatsFlightAndTraces) {
    ServeCliOptions options;
    options.grammar_path = temp_file("serve_ctl.asg", kServeGrammar);
    options.context_path = temp_file("serve_ctl.lp", "maxloa(3).\n");
    options.threads = 2;
    options.trace_sample = 1;  // capture every request's span tree
    std::string trace_path = std::string(::testing::TempDir()) + "/agenp_serve_ctl_trace.json";

    std::istringstream in("do patrol\ndo strike\n!stats\n!flight\n!trace " + trace_path +
                          "\n!bogus\n");
    std::ostringstream out;
    EXPECT_EQ(cmd_serve(options, in, out), 0);
    std::string text = out.str();

    // Decisions, in request order.
    EXPECT_NE(text.find("Permit"), std::string::npos);
    EXPECT_NE(text.find("Deny"), std::string::npos);

    // !stats: one-line JSON with service, cache and per-lock sections.
    auto stats_pos = text.find("SERVE_STATS_JSON {");
    ASSERT_NE(stats_pos, std::string::npos);
    std::string stats_line = text.substr(stats_pos, text.find('\n', stats_pos) - stats_pos);
    for (const char* field : {"\"submitted\":2", "\"permitted\":1", "\"denied\":1",
                              "\"cache\":", "\"locks\":", "\"srv.model\":"}) {
        EXPECT_NE(stats_line.find(field), std::string::npos) << field;
    }

    // !flight: both requests in the ring, monotone ids.
    auto flight_pos = text.find("FLIGHT_JSON [");
    ASSERT_NE(flight_pos, std::string::npos);
    std::string flight_line = text.substr(flight_pos, text.find('\n', flight_pos) - flight_pos);
    EXPECT_NE(flight_line.find("\"id\":1"), std::string::npos);
    EXPECT_NE(flight_line.find("\"id\":2"), std::string::npos);
    EXPECT_NE(flight_line.find("\"total_us\":"), std::string::npos);

    // !trace: Chrome trace JSON with queue-wait and solve spans on disk.
    EXPECT_NE(text.find("trace written to " + trace_path), std::string::npos);
    std::string trace_json = read_file(trace_path);
    EXPECT_NE(trace_json.find("srv.queue_wait"), std::string::npos);
    EXPECT_NE(trace_json.find("srv.solve"), std::string::npos);
    EXPECT_NE(trace_json.find("\"ph\":\"X\""), std::string::npos);

    // Unknown control lines get a hint instead of being sent to the PDP.
    EXPECT_NE(text.find("unknown control line: !bogus"), std::string::npos);
}

TEST(CmdServe, UsageMentionsObservabilityFlags) {
    std::ostringstream out, err;
    int code = run({"serve"}, out, err);
    EXPECT_NE(code, 0);
    for (const char* flag : {"--trace-slow-ms", "--trace-sample", "--stats-every", "--listen",
                             "--replicas", "--state-dir", "--snapshot-every", "--cache-shards"}) {
        EXPECT_NE(err.str().find(flag), std::string::npos) << flag;
    }
}

TEST(CmdServe, WarmRestartRoundTripThroughStateDir) {
    ServeCliOptions options;
    options.grammar_path = temp_file("serve_state.asg", kServeGrammar);
    options.context_path = temp_file("serve_state.lp", "maxloa(3).\n");
    options.threads = 2;
    options.state_dir = std::string(::testing::TempDir()) + "/agenp_cli_state";

    // First life: cold start (nothing to restore), two decisions, and a
    // drain-time snapshot covering both.
    {
        std::istringstream in("do patrol\ndo strike\n");
        std::ostringstream out;
        EXPECT_EQ(cmd_serve(options, in, out), 0);
        EXPECT_NE(out.str().find("AGENP_STATE_RESTORED entries=0"), std::string::npos)
            << out.str();
        EXPECT_NE(out.str().find("SNAPSHOT_JSON {\"entries\":2"), std::string::npos) << out.str();
    }
    // Second life on the same --state-dir: both requests hit the restored
    // cache and the store section reports the warm start.
    {
        std::istringstream in("do patrol\ndo strike\n!stats\n");
        std::ostringstream out;
        EXPECT_EQ(cmd_serve(options, in, out), 0);
        std::string text = out.str();
        EXPECT_NE(text.find("AGENP_STATE_RESTORED entries=2"), std::string::npos) << text;
        auto stats_pos = text.find("SERVE_STATS_JSON {");
        ASSERT_NE(stats_pos, std::string::npos);
        std::string stats_line = text.substr(stats_pos, text.find('\n', stats_pos) - stats_pos);
        for (const char* field :
             {"\"hits\":2", "\"misses\":0", "\"store\":{", "\"restored\":true",
              "\"restored_entries\":2"}) {
            EXPECT_NE(stats_line.find(field), std::string::npos) << field << "\n" << stats_line;
        }
    }
    std::remove((options.state_dir + "/snapshot.agenp").c_str());
    std::remove((options.state_dir + "/wal.agenp").c_str());
    ::rmdir(options.state_dir.c_str());
}

TEST(CmdServe, SnapshotControlLineNeedsStateDir) {
    ServeCliOptions options;
    options.grammar_path = temp_file("serve_snap.asg", kServeGrammar);
    options.context_path = temp_file("serve_snap.lp", "maxloa(3).\n");
    options.threads = 1;

    // Without --state-dir the control line explains itself.
    {
        std::istringstream in("!snapshot\n");
        std::ostringstream out;
        EXPECT_EQ(cmd_serve(options, in, out), 0);
        EXPECT_NE(out.str().find("snapshot unavailable: serve started without --state-dir"),
                  std::string::npos)
            << out.str();
    }
    // With one, it persists on demand and replies with the summary line.
    options.state_dir = std::string(::testing::TempDir()) + "/agenp_cli_snap";
    {
        std::istringstream in("do patrol\n!snapshot\n");
        std::ostringstream out;
        EXPECT_EQ(cmd_serve(options, in, out), 0);
        EXPECT_NE(out.str().find("SNAPSHOT_JSON {\"entries\":1"), std::string::npos) << out.str();
    }
    std::remove((options.state_dir + "/snapshot.agenp").c_str());
    std::remove((options.state_dir + "/wal.agenp").c_str());
    ::rmdir(options.state_dir.c_str());
}

TEST(CmdServe, StdinModeRoutesAcrossReplicasAndSpeaksJson) {
    ServeCliOptions options;
    options.grammar_path = temp_file("serve_repl.asg", kServeGrammar);
    options.context_path = temp_file("serve_repl.lp", "maxloa(3).\n");
    options.threads = 2;
    options.replicas = 2;  // stdin front door over a 2-replica router

    // Plain token lines and wire-protocol JSON lines share one dispatch
    // path; both kinds work interleaved on stdin.
    std::istringstream in("do patrol\n{\"id\":7,\"decide\":\"do strike\"}\n!stats\n");
    std::ostringstream out;
    EXPECT_EQ(cmd_serve(options, in, out), 0);
    std::string text = out.str();

    EXPECT_NE(text.find("Permit"), std::string::npos);
    // The JSON line gets a JSON reply with the echoed id.
    EXPECT_NE(text.find("\"id\":7,\"outcome\":\"deny\""), std::string::npos);

    auto stats_pos = text.find("SERVE_STATS_JSON {");
    ASSERT_NE(stats_pos, std::string::npos);
    std::string stats_line = text.substr(stats_pos, text.find('\n', stats_pos) - stats_pos);
    for (const char* field :
         {"\"submitted\":2", "\"replicas\":[", "\"model_version\":0", "\"versions_agree\":true",
          "\"routed\":{\"affinity\":2,\"fallback\":0}"}) {
        EXPECT_NE(stats_line.find(field), std::string::npos) << field << "\n" << stats_line;
    }
}

TEST(CmdLoadgen, UsageAndConnectValidation) {
    std::ostringstream out, err;
    int code = run({"loadgen", "--connect"}, out, err);
    EXPECT_NE(code, 0);
    EXPECT_NE(err.str().find("--connect"), std::string::npos);
    // HOST:PORT shape is validated before any socket work.
    for (const char* bad : {"localhost", ":9000", "localhost:"}) {
        std::ostringstream out2, err2;
        EXPECT_NE(run({"loadgen", "--connect", bad}, out2, err2), 0) << bad;
        EXPECT_NE(err2.str().find("HOST:PORT"), std::string::npos) << bad;
    }
}

TEST(CmdLoadgen, CacheShardsFlagParses) {
    std::ostringstream out, err;
    EXPECT_EQ(run({"loadgen", "--clients", "2", "--requests", "10", "--cache-shards", "4"}, out,
                  err),
              0)
        << err.str();
    EXPECT_NE(out.str().find("LOADGEN_JSON {"), std::string::npos);
}

TEST(CmdLoadgen, MemoFlagsParse) {
    // --no-memo and --memo-mb reach the in-process service options; the
    // report line says which mode ran.
    std::ostringstream out, err;
    EXPECT_EQ(run({"loadgen", "--clients", "2", "--requests", "10", "--no-memo"}, out, err), 0)
        << err.str();
    EXPECT_NE(out.str().find("memo off"), std::string::npos);
    std::ostringstream out2, err2;
    EXPECT_EQ(run({"loadgen", "--clients", "2", "--requests", "10", "--memo-mb", "8"}, out2,
                  err2),
              0)
        << err2.str();
    EXPECT_NE(out2.str().find("memo on"), std::string::npos);
}

TEST(CmdServe, UsageMentionsMemoFlags) {
    std::ostringstream out, err;
    EXPECT_NE(run({"serve"}, out, err), 0);
    EXPECT_NE(err.str().find("--no-memo"), std::string::npos);
    EXPECT_NE(err.str().find("--memo-mb"), std::string::npos);
    // The loadgen usage line carries them too.
    std::ostringstream out2, err2;
    EXPECT_NE(run({"loadgen", "--bogus-flag"}, out2, err2), 0);
    EXPECT_NE(err2.str().find("--no-memo"), std::string::npos);
    EXPECT_NE(err2.str().find("--memo-mb"), std::string::npos);
}

TEST(CmdLoadgen, InProcessReportCarriesDroppedCount) {
    LoadgenCliOptions options;
    options.threads = 2;
    options.clients = 2;
    options.requests_per_client = 20;
    std::ostringstream out;
    EXPECT_EQ(cmd_loadgen(options, out), 0);
    EXPECT_NE(out.str().find("0 dropped"), std::string::npos);
    EXPECT_NE(out.str().find("LOADGEN_JSON {"), std::string::npos);
    EXPECT_NE(out.str().find("\"dropped\":0"), std::string::npos);
}

// --- lint ------------------------------------------------------------------

const char* kDefectiveProgram = R"(
q(1).
t(1, 2).
t(1).
r(Y) :- q(Y), not s(Z).
:- q(1).
u :- not u.
)";

TEST(CmdLint, FlagsSeededDefectCorpusAndExitsNonzero) {
    auto path = temp_file("bad.lp", kDefectiveProgram);
    std::ostringstream out, err;
    int code = run({"lint", path}, out, err);
    EXPECT_EQ(code, 1);
    for (const char* needle :
         {"ASP001", "ASP002", "ASP004", "ASP005", "ASP006", "unsafe variable Z",
          "different arities", "negation cycle through {u}"}) {
        EXPECT_NE(out.str().find(needle), std::string::npos) << needle;
    }
}

TEST(CmdLint, JsonOutputIsMachineReadable) {
    auto path = temp_file("bad_json.lp", kDefectiveProgram);
    std::ostringstream out, err;
    int code = run({"lint", path, "--json"}, out, err);
    EXPECT_EQ(code, 1);
    const std::string& text = out.str();
    EXPECT_EQ(text.rfind("{\"errors\":3", 0), 0u) << text;
    EXPECT_NE(text.find("\"code\":\"ASP001\""), std::string::npos);
    EXPECT_NE(text.find("\"severity\":\"error\""), std::string::npos);
    EXPECT_NE(text.find("\"rule\":4"), std::string::npos);
}

TEST(CmdLint, GrammarWithContextPassesCleanStrictPromotesWarnings) {
    auto grammar = temp_file("loa.asg", R"(
request -> "do" task {
    :- requires(L)@2, maxloa(M), L > M.
}
task -> "patrol" { requires(2). }
)");
    auto context = temp_file("loa_ctx.lp", "maxloa(3).\n");

    std::ostringstream clean_out, err;
    EXPECT_EQ(run({"lint", grammar, "--context", context}, clean_out, err), 0);
    EXPECT_NE(clean_out.str().find("0 error(s), 0 warning(s)"), std::string::npos);

    // Without the context, maxloa is an undefined-predicate warning: still
    // exit 0 by default, nonzero under --strict.
    std::ostringstream warn_out;
    EXPECT_EQ(run({"lint", grammar}, warn_out, err), 0);
    EXPECT_NE(warn_out.str().find("ASP002"), std::string::npos);
    std::ostringstream strict_out;
    EXPECT_EQ(run({"lint", grammar, "--strict"}, strict_out, err), 1);
}

TEST(CmdLint, FlagsGrammarShapeDefects) {
    auto grammar = temp_file("shape.asg", R"(
s -> "go" loop
loop -> "again" loop
orphan -> "x"
)");
    std::ostringstream out, err;
    int code = run({"lint", grammar}, out, err);
    EXPECT_EQ(code, 1);  // the empty start language is an error
    for (const char* needle : {"ASG001", "ASG002", "ASG003", "orphan"}) {
        EXPECT_NE(out.str().find(needle), std::string::npos) << needle;
    }
}

TEST(CmdLint, UsageAndMissingFileAreExitTwo) {
    std::ostringstream out, err;
    EXPECT_EQ(run({"lint"}, out, err), 2);
    EXPECT_NE(err.str().find("usage: agenp lint"), std::string::npos);
    EXPECT_EQ(run({"lint", "/nonexistent/x.lp"}, out, err), 2);
}

// The shipped corpus under examples/policies/ must stay error-free: the CI
// lint gate runs the same check over the tree.
TEST(CmdLint, ShippedExamplePoliciesLintWithoutErrors) {
    std::string dir = std::string(AGENP_SOURCE_DIR) + "/examples/policies";
    std::vector<std::string> checked;
    for (const char* name :
         {"quickstart.asg", "serve_demo.asg", "anbn.asg", "transitive_closure.lp", "choice.lp"}) {
        std::string path = dir + "/" + name;
        std::string file(name);
        std::vector<std::string> args = {"lint", path};
        if (file.ends_with(".asg")) {
            std::string ctx = dir + "/" + file.substr(0, file.size() - 4) + "_ctx.lp";
            if (std::ifstream(ctx).good()) {
                args.push_back("--context");
                args.push_back(ctx);
            }
        }
        std::ostringstream out, err;
        EXPECT_EQ(run(args, out, err), 0) << path << "\n" << out.str() << err.str();
        checked.push_back(path);
    }
    EXPECT_EQ(checked.size(), 5u);
}

}  // namespace
}  // namespace agenp::cli
