#include <gtest/gtest.h>

#include <algorithm>

#include "asp/grounder.hpp"
#include "asp/parser.hpp"

namespace agenp::asp {
namespace {

// Renders the ground program and checks a line is present.
bool has_line(const GroundProgram& gp, std::string_view line) {
    auto text = gp.to_string();
    std::string needle = std::string(line) + "\n";
    return text.find(needle) != std::string::npos;
}

TEST(Grounder, GroundsFactsVerbatim) {
    auto gp = ground(parse_program("p(a). p(b)."));
    EXPECT_EQ(gp.rules().size(), 2u);
    EXPECT_TRUE(has_line(gp, "p(a)."));
    EXPECT_TRUE(has_line(gp, "p(b)."));
}

TEST(Grounder, InstantiatesVariablesOverDerivedAtoms) {
    auto gp = ground(parse_program("p(a). p(b). q(X) :- p(X)."));
    EXPECT_TRUE(has_line(gp, "q(a) :- p(a)."));
    EXPECT_TRUE(has_line(gp, "q(b) :- p(b)."));
}

TEST(Grounder, JoinsSharedVariables) {
    auto gp = ground(parse_program(R"(
        e(1, 2). e(2, 3).
        path(X, Z) :- e(X, Y), e(Y, Z).
    )"));
    EXPECT_TRUE(has_line(gp, "path(1,3) :- e(1,2), e(2,3)."));
    // No join on mismatched middles:
    EXPECT_FALSE(has_line(gp, "path(1,2) :- e(1,2), e(1,2)."));
}

TEST(Grounder, RecursiveRulesReachFixpoint) {
    auto gp = ground(parse_program(R"(
        e(1, 2). e(2, 3). e(3, 4).
        r(X, Y) :- e(X, Y).
        r(X, Z) :- r(X, Y), e(Y, Z).
    )"));
    EXPECT_TRUE(has_line(gp, "r(1,4) :- r(1,3), e(3,4)."));
}

TEST(Grounder, EvaluatesBuiltinsDuringInstantiation) {
    auto gp = ground(parse_program("n(1). n(2). n(3). big(X) :- n(X), X >= 2."));
    EXPECT_FALSE(has_line(gp, "big(1) :- n(1)."));
    EXPECT_TRUE(has_line(gp, "big(2) :- n(2)."));
    EXPECT_TRUE(has_line(gp, "big(3) :- n(3)."));
}

TEST(Grounder, EqualityBinderComputesValues) {
    auto gp = ground(parse_program("n(2). m(Y) :- n(X), Y = X * 10."));
    EXPECT_TRUE(has_line(gp, "m(20) :- n(2)."));
}

TEST(Grounder, BinderOnlyRuleFiresOnce) {
    auto gp = ground(parse_program("p(X) :- X = 3 + 4."));
    EXPECT_TRUE(has_line(gp, "p(7)."));
}

TEST(Grounder, DropsNegationOnUnderivableAtoms) {
    // q can never be derived, so "not q" simplifies away.
    auto gp = ground(parse_program("p :- not q."));
    EXPECT_TRUE(has_line(gp, "p."));
}

TEST(Grounder, KeepsNegationOnDerivableAtoms) {
    auto gp = ground(parse_program("q :- not p. p :- not q."));
    EXPECT_TRUE(has_line(gp, "q :- not p."));
    EXPECT_TRUE(has_line(gp, "p :- not q."));
}

TEST(Grounder, InstantiatesConstraints) {
    auto gp = ground(parse_program("p(a). p(b). :- p(X)."));
    EXPECT_TRUE(has_line(gp, ":- p(a)."));
    EXPECT_TRUE(has_line(gp, ":- p(b)."));
}

TEST(Grounder, ConstraintWithComparisonFiltersInstances) {
    auto gp = ground(parse_program("n(1). n(5). :- n(X), X > 3."));
    EXPECT_FALSE(has_line(gp, ":- n(1)."));
    EXPECT_TRUE(has_line(gp, ":- n(5)."));
}

TEST(Grounder, RejectsUnsafeRule) {
    EXPECT_THROW(ground(parse_program("p(X) :- not q(X).")), GroundingError);
}

TEST(Grounder, RejectsUnsafeComparisonVariable) {
    EXPECT_THROW(ground(parse_program("p :- X > 3.")), GroundingError);
}

TEST(Grounder, UnsafeRuleCarriesStructuredDiagnostics) {
    try {
        ground(parse_program("q(1). p(X) :- not q(X)."));
        FAIL() << "expected GroundingError";
    } catch (const GroundingError& e) {
        ASSERT_EQ(e.diagnostics.size(), 1u);
        const auto& d = e.diagnostics[0];
        EXPECT_EQ(d.code, analysis::codes::kUnsafeVariable);
        EXPECT_EQ(d.severity, analysis::Severity::Error);
        EXPECT_EQ(d.location.rule, 1);
        EXPECT_NE(d.message.find("X"), std::string::npos);
        EXPECT_NE(d.location.context.find("p(X)"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("unsafe variable X"), std::string::npos);
    }
}

TEST(Grounder, ReportsEveryUnsafeVariableAcrossRules) {
    try {
        ground(parse_program("a(X) :- not b(X). c :- Y > 0, Z > 1."));
        FAIL() << "expected GroundingError";
    } catch (const GroundingError& e) {
        ASSERT_EQ(e.diagnostics.size(), 3u);  // X in rule 0, Y and Z in rule 1
        EXPECT_EQ(e.diagnostics[0].location.rule, 0);
        EXPECT_EQ(e.diagnostics[1].location.rule, 1);
        EXPECT_EQ(e.diagnostics[2].location.rule, 1);
        EXPECT_NE(e.diagnostics[1].message.find("Y"), std::string::npos);
        EXPECT_NE(e.diagnostics[2].message.find("Z"), std::string::npos);
    }
}

TEST(Grounder, LimitErrorsCarryNoDiagnostics) {
    GroundingLimits limits;
    limits.max_atoms = 5;
    try {
        ground(parse_program("n(0). n(Y) :- n(X), Y = X + 1, X < 100."), limits);
        FAIL() << "expected GroundingError";
    } catch (const GroundingError& e) {
        EXPECT_TRUE(e.diagnostics.empty());
    }
}

TEST(Grounder, EnforcesAtomLimit) {
    GroundingLimits limits;
    limits.max_atoms = 10;
    EXPECT_THROW(ground(parse_program(R"(
        n(0).
        n(Y) :- n(X), Y = X + 1, X < 100.
    )"), limits), GroundingError);
}

TEST(Grounder, ArithmeticChainTerminatesWithGuard) {
    auto gp = ground(parse_program(R"(
        n(0).
        n(Y) :- n(X), Y = X + 1, X < 5.
    )"));
    // n(0)..n(5) plus five derivation rules
    EXPECT_TRUE(has_line(gp, "n(5) :- n(4)."));
    EXPECT_FALSE(has_line(gp, "n(6) :- n(5)."));
}

TEST(Grounder, DuplicateGroundRulesAreMerged) {
    auto gp = ground(parse_program("p(a). q :- p(a). q :- p(a)."));
    auto text = gp.to_string();
    auto first = text.find("q :- p(a).");
    ASSERT_NE(first, std::string::npos);
    EXPECT_EQ(text.find("q :- p(a).", first + 1), std::string::npos);
}

TEST(Grounder, CompoundTermsFlowThroughJoins) {
    auto gp = ground(parse_program(R"(
        holds(pair(a, b)).
        left(X) :- holds(pair(X, Y)).
    )"));
    EXPECT_TRUE(has_line(gp, "left(a) :- holds(pair(a,b))."));
}

TEST(Grounder, EmptyProgramGroundsToEmpty) {
    auto gp = ground(Program{});
    EXPECT_EQ(gp.rules().size(), 0u);
    EXPECT_EQ(gp.atom_count(), 0u);
}

}  // namespace
}  // namespace agenp::asp
