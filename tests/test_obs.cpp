#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/lockprof.hpp"
#include "obs/metrics.hpp"
#include "obs/reqtrace.hpp"
#include "obs/trace.hpp"

namespace agenp::obs {
namespace {

// --- minimal JSON validator --------------------------------------------------
// Recursive-descent syntax checker, enough to assert that render_json() and
// chrome_trace_json() emit well-formed JSON without pulling in a library.

class JsonChecker {
public:
    explicit JsonChecker(std::string_view text) : text_(text) {}

    bool valid() {
        skip_ws();
        if (!value()) return false;
        skip_ws();
        return pos_ == text_.size();
    }

private:
    bool value() {
        if (pos_ >= text_.size()) return false;
        switch (text_[pos_]) {
            case '{': return object();
            case '[': return array();
            case '"': return string();
            case 't': return literal("true");
            case 'f': return literal("false");
            case 'n': return literal("null");
            default: return number();
        }
    }

    bool object() {
        ++pos_;  // '{'
        skip_ws();
        if (peek() == '}') { ++pos_; return true; }
        while (true) {
            skip_ws();
            if (!string()) return false;
            skip_ws();
            if (peek() != ':') return false;
            ++pos_;
            skip_ws();
            if (!value()) return false;
            skip_ws();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == '}') { ++pos_; return true; }
            return false;
        }
    }

    bool array() {
        ++pos_;  // '['
        skip_ws();
        if (peek() == ']') { ++pos_; return true; }
        while (true) {
            skip_ws();
            if (!value()) return false;
            skip_ws();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == ']') { ++pos_; return true; }
            return false;
        }
    }

    bool string() {
        if (peek() != '"') return false;
        ++pos_;
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == '"') { ++pos_; return true; }
            if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control char
            if (c == '\\') {
                ++pos_;
                if (pos_ >= text_.size()) return false;
                char e = text_[pos_];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos_;
                        if (pos_ >= text_.size() || !std::isxdigit(
                                static_cast<unsigned char>(text_[pos_]))) {
                            return false;
                        }
                    }
                } else if (std::string_view("\"\\/bfnrt").find(e) == std::string_view::npos) {
                    return false;
                }
            }
            ++pos_;
        }
        return false;  // unterminated
    }

    bool number() {
        std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
        if (peek() == '.') {
            ++pos_;
            while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-') ++pos_;
            while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
        }
        return pos_ > start;
    }

    bool literal(std::string_view word) {
        if (text_.substr(pos_, word.size()) != word) return false;
        pos_ += word.size();
        return true;
    }

    char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
    void skip_ws() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
                text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

bool is_valid_json(std::string_view text) { return JsonChecker(text).valid(); }

// Busy-wait so span durations are real elapsed time (sleep granularity on
// loaded CI machines would make the self-time assertions flaky).
void spin_for_us(std::uint64_t us) {
    std::uint64_t end = monotonic_ns() + us * 1000;
    while (monotonic_ns() < end) {
    }
}

// --- instruments -------------------------------------------------------------

TEST(Counter, AddAndReset) {
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAddNegative) {
    Gauge g;
    g.set(10);
    g.add(-25);
    EXPECT_EQ(g.value(), -15);
    g.set(7);
    EXPECT_EQ(g.value(), 7);
    g.reset();
    EXPECT_EQ(g.value(), 0);
}

TEST(Histogram, CountSumMinMax) {
    Histogram h;
    auto empty = h.snapshot();
    EXPECT_EQ(empty.count, 0u);
    EXPECT_EQ(empty.min, 0u);
    EXPECT_EQ(empty.max, 0u);
    EXPECT_EQ(empty.mean(), 0.0);

    h.observe(3);
    h.observe(900);
    h.observe(17);
    auto s = h.snapshot();
    EXPECT_EQ(s.count, 3u);
    EXPECT_EQ(s.sum, 920u);
    EXPECT_EQ(s.min, 3u);
    EXPECT_EQ(s.max, 900u);
    EXPECT_NEAR(s.mean(), 920.0 / 3.0, 1e-9);

    h.reset();
    EXPECT_EQ(h.snapshot().count, 0u);
}

TEST(Histogram, QuantilesOfConstantStream) {
    Histogram h;
    for (int i = 0; i < 10; ++i) h.observe(100);
    auto s = h.snapshot();
    // min == max == 100 clips the bucket interpolation to the exact value.
    EXPECT_EQ(s.quantile(0.0), 100.0);
    EXPECT_EQ(s.quantile(0.5), 100.0);
    EXPECT_EQ(s.quantile(1.0), 100.0);
}

TEST(Histogram, QuantilesAreOrderedAndBounded) {
    Histogram h;
    for (std::uint64_t v = 1; v <= 1000; ++v) h.observe(v);
    auto s = h.snapshot();
    double p10 = s.quantile(0.10);
    double p50 = s.quantile(0.50);
    double p99 = s.quantile(0.99);
    EXPECT_LE(p10, p50);
    EXPECT_LE(p50, p99);
    EXPECT_GE(p10, static_cast<double>(s.min));
    EXPECT_LE(p99, static_cast<double>(s.max));
    // Exponential buckets are coarse, but the median of 1..1000 should land
    // within its bucket [256, 511].
    EXPECT_GE(p50, 256.0);
    EXPECT_LE(p50, 512.0);
}

TEST(Histogram, ZeroAndHugeValuesDoNotClip) {
    Histogram h;
    h.observe(0);
    h.observe(~std::uint64_t{0});
    auto s = h.snapshot();
    EXPECT_EQ(s.count, 2u);
    EXPECT_EQ(s.min, 0u);
    EXPECT_EQ(s.max, ~std::uint64_t{0});
}

// Pins the quantile estimator shared by the loadgen report and the
// server-side latency summaries (LoadgenReport::fill_latency): both must
// keep quoting the same numbers for the same stream. If the estimator
// changes intentionally, update these values in one place here.
TEST(Histogram, QuantilePinning) {
    Histogram h;
    for (std::uint64_t v = 1; v <= 1000; ++v) h.observe(v);
    auto s = h.snapshot();
    // Linear interpolation inside the bit-width bucket that holds the
    // requested rank (uniform 1..1000: within ~1% of the exact ranks).
    EXPECT_DOUBLE_EQ(s.quantile(0.5), 499.544921875);
    EXPECT_DOUBLE_EQ(s.quantile(0.95), 949.15419222903881);
    EXPECT_DOUBLE_EQ(s.quantile(0.99), 989.0324744376278);
    EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 999.00204498977507);
    EXPECT_DOUBLE_EQ(s.mean(), 500.5);
}

// --- metric naming -----------------------------------------------------------

TEST(Naming, ValidMetricNames) {
    EXPECT_TRUE(valid_metric_name("srv.requests"));
    EXPECT_TRUE(valid_metric_name("asp.solver.decisions"));
    EXPECT_TRUE(valid_metric_name("x"));
    EXPECT_TRUE(valid_metric_name("a_b.c_d9"));
    EXPECT_TRUE(valid_metric_name("_private.ok"));
    EXPECT_FALSE(valid_metric_name(""));
    EXPECT_FALSE(valid_metric_name("."));
    EXPECT_FALSE(valid_metric_name("srv."));
    EXPECT_FALSE(valid_metric_name(".srv"));
    EXPECT_FALSE(valid_metric_name("srv..requests"));
    EXPECT_FALSE(valid_metric_name("srv.9starts_with_digit"));
    EXPECT_FALSE(valid_metric_name("srv.queue-depth"));  // '-' breaks Prometheus names
    EXPECT_FALSE(valid_metric_name("srv.queue depth"));
    EXPECT_FALSE(valid_metric_name("srv.queue[0]"));
}

TEST(Naming, ValidLabelKeys) {
    EXPECT_TRUE(valid_label_key("replica"));
    EXPECT_TRUE(valid_label_key("shard_id"));
    EXPECT_TRUE(valid_label_key("_le"));
    EXPECT_FALSE(valid_label_key(""));
    EXPECT_FALSE(valid_label_key("9replica"));
    EXPECT_FALSE(valid_label_key("lock.name"));  // dots are for metric names only
    EXPECT_FALSE(valid_label_key("a-b"));
}

TEST(Naming, MetricKeyRoundTrips) {
    std::string name;
    MetricLabels labels;

    // Bare name.
    ASSERT_TRUE(parse_metric_key("srv.requests", &name, &labels));
    EXPECT_EQ(name, "srv.requests");
    EXPECT_TRUE(labels.empty());

    // Labeled, including a value that needs escaping.
    MetricLabels in{{"replica", "0"}, {"lock", "srv.model \"x\""}};
    std::string key = metric_key("srv.router.queue_depth", in);
    ASSERT_TRUE(parse_metric_key(key, &name, &labels));
    EXPECT_EQ(name, "srv.router.queue_depth");
    EXPECT_EQ(labels, in);

    // Malformed encodings are rejected, not half-parsed.
    EXPECT_FALSE(parse_metric_key("srv.x{", &name, &labels));
    EXPECT_FALSE(parse_metric_key("srv.x{replica=0}", &name, &labels));
    EXPECT_FALSE(parse_metric_key("srv.x{replica=\"0\"", &name, &labels));
    EXPECT_FALSE(parse_metric_key("{replica=\"0\"}", &name, &labels));
}

TEST(Naming, LabeledRegistrationIsPerLabelSet) {
    MetricsRegistry r;
    Counter& a = r.counter("srv.test.labeled", {{"replica", "0"}});
    Counter& b = r.counter("srv.test.labeled", {{"replica", "1"}});
    Counter& bare = r.counter("srv.test.labeled");
    EXPECT_NE(&a, &b);
    EXPECT_NE(&a, &bare);
    EXPECT_EQ(&a, &r.counter("srv.test.labeled", {{"replica", "0"}}));
    a.add(5);
    b.add(7);

    // The snapshot keys are metric_key() encodings that exporters can
    // split back into (name, labels).
    auto snap = r.snapshot();
    std::size_t found = 0;
    for (const auto& [key, value] : snap.counters) {
        std::string name;
        MetricLabels labels;
        ASSERT_TRUE(parse_metric_key(key, &name, &labels)) << key;
        if (name != "srv.test.labeled" || labels.empty()) continue;
        ++found;
        if (labels == MetricLabels{{"replica", "0"}}) EXPECT_EQ(value, 5u);
        if (labels == MetricLabels{{"replica", "1"}}) EXPECT_EQ(value, 7u);
    }
    EXPECT_EQ(found, 2u);
}

// --- registry ----------------------------------------------------------------

TEST(Registry, SameNameReturnsSameInstrument) {
    MetricsRegistry r;
    EXPECT_EQ(&r.counter("a"), &r.counter("a"));
    EXPECT_NE(&r.counter("a"), &r.counter("b"));
    // Counter / gauge / histogram namespaces are independent.
    EXPECT_EQ(&r.gauge("a"), &r.gauge("a"));
    EXPECT_EQ(&r.histogram("a"), &r.histogram("a"));
}

TEST(Registry, ReferencesSurviveLaterRegistrations) {
    MetricsRegistry r;
    Counter& first = r.counter("stable");
    first.add(5);
    // Register enough names to force rebalancing in a node-unstable container.
    for (int i = 0; i < 200; ++i) r.counter("filler." + std::to_string(i));
    EXPECT_EQ(&r.counter("stable"), &first);
    EXPECT_EQ(first.value(), 5u);
}

TEST(Registry, ConcurrentIncrementsAreExact) {
    MetricsRegistry r;
    constexpr int kThreads = 8;
    constexpr std::uint64_t kPerThread = 20'000;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&r] {
            // Lookup inside the loop exercises concurrent registration too.
            for (std::uint64_t i = 0; i < kPerThread; ++i) r.counter("shared").add();
        });
    }
    for (auto& w : workers) w.join();
    EXPECT_EQ(r.counter("shared").value(), kThreads * kPerThread);
}

TEST(Registry, ConcurrentHistogramObservations) {
    MetricsRegistry r;
    constexpr int kThreads = 4;
    constexpr std::uint64_t kPerThread = 10'000;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&r] {
            Histogram& h = r.histogram("lat");
            for (std::uint64_t i = 1; i <= kPerThread; ++i) h.observe(i);
        });
    }
    for (auto& w : workers) w.join();
    auto s = r.histogram("lat").snapshot();
    EXPECT_EQ(s.count, kThreads * kPerThread);
    EXPECT_EQ(s.sum, kThreads * (kPerThread * (kPerThread + 1) / 2));
    EXPECT_EQ(s.min, 1u);
    EXPECT_EQ(s.max, kPerThread);
}

TEST(Registry, RenderTextListsInstruments) {
    MetricsRegistry r;
    r.counter("alpha.count").add(3);
    r.gauge("beta.level").set(-2);
    r.histogram("gamma.time_us").observe(10);
    auto text = r.render_text();
    EXPECT_NE(text.find("alpha.count"), std::string::npos);
    EXPECT_NE(text.find("3"), std::string::npos);
    EXPECT_NE(text.find("beta.level"), std::string::npos);
    EXPECT_NE(text.find("-2"), std::string::npos);
    EXPECT_NE(text.find("gamma.time_us"), std::string::npos);
    EXPECT_NE(text.find("count=1"), std::string::npos);
}

TEST(Registry, RenderJsonIsWellFormed) {
    MetricsRegistry r;
    EXPECT_TRUE(is_valid_json(r.render_json())) << r.render_json();
    r.counter("c.one").add(1);
    r.gauge("g.one").set(-7);
    r.histogram("h.one").observe(42);
    r.counter("weird \"name\"\\with\nescapes").add(9);
    auto json = r.render_json();
    EXPECT_TRUE(is_valid_json(json)) << json;
    EXPECT_NE(json.find("\"c.one\":1"), std::string::npos);
    EXPECT_NE(json.find("\"g.one\":-7"), std::string::npos);
    EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

TEST(Registry, ResetZeroesButKeepsNames) {
    MetricsRegistry r;
    r.counter("keep").add(11);
    r.histogram("keep_us").observe(5);
    r.reset();
    EXPECT_EQ(r.counter("keep").value(), 0u);
    EXPECT_EQ(r.histogram("keep_us").snapshot().count, 0u);
    auto s = r.snapshot();
    ASSERT_EQ(s.counters.size(), 1u);
    EXPECT_EQ(s.counters[0].first, "keep");
}

TEST(Registry, GlobalRegistryIsASingleton) {
    EXPECT_EQ(&metrics(), &metrics());
}

TEST(Metrics, DisabledSkipsScopedTimer) {
    Histogram h;
    set_metrics_enabled(false);
    { ScopedTimer t(h); }
    set_metrics_enabled(true);
    EXPECT_EQ(h.snapshot().count, 0u);
    { ScopedTimer t(h); }
    EXPECT_EQ(h.snapshot().count, 1u);
}

// --- tracing -----------------------------------------------------------------

TEST(Trace, DisabledRecorderCapturesNothing) {
    tracer().set_enabled(false);
    tracer().clear();
    { ScopedSpan span("invisible"); }
    EXPECT_TRUE(tracer().events().empty());
}

TEST(Trace, SpanNestingAndSelfTime) {
    tracer().set_enabled(true);
    tracer().clear();
    {
        ScopedSpan outer("outer", "test");
        spin_for_us(2000);
        {
            ScopedSpan inner("inner", "test");
            spin_for_us(2000);
        }
        spin_for_us(1000);
    }
    tracer().set_enabled(false);

    auto events = tracer().events();
    ASSERT_EQ(events.size(), 2u);
    // Spans are recorded at destruction: inner first, outer second.
    const auto& inner = events[0];
    const auto& outer = events[1];
    EXPECT_EQ(inner.name, "inner");
    EXPECT_EQ(outer.name, "outer");
    EXPECT_EQ(inner.depth, 1u);
    EXPECT_EQ(outer.depth, 0u);
    EXPECT_EQ(inner.thread, outer.thread);

    // The child lies inside the parent on the timeline.
    EXPECT_GE(inner.start_us, outer.start_us);
    EXPECT_LE(inner.start_us + inner.duration_us, outer.start_us + outer.duration_us);

    // Self time excludes the child: ~3ms of the outer ~5ms.
    EXPECT_LE(inner.self_us, inner.duration_us);
    EXPECT_GE(outer.duration_us, inner.duration_us);
    EXPECT_LE(outer.self_us, outer.duration_us - inner.duration_us + 100);
    EXPECT_GE(outer.self_us + inner.duration_us + 100, outer.duration_us);
}

TEST(Trace, ChromeTraceJsonIsWellFormed) {
    tracer().set_enabled(true);
    tracer().clear();
    {
        ScopedSpan a("phase.a", "test");
        ScopedSpan b("phase \"b\"\\nested", "test");
        spin_for_us(100);
    }
    tracer().set_enabled(false);

    auto json = tracer().chrome_trace_json();
    EXPECT_TRUE(is_valid_json(json)) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
    EXPECT_NE(json.find("phase.a"), std::string::npos);
}

TEST(Trace, FlatProfileAggregatesByName) {
    tracer().set_enabled(true);
    tracer().clear();
    for (int i = 0; i < 3; ++i) {
        ScopedSpan span("repeated", "test");
        spin_for_us(200);
    }
    tracer().set_enabled(false);

    auto profile = tracer().flat_profile();
    EXPECT_NE(profile.find("repeated"), std::string::npos);
    EXPECT_NE(profile.find("3"), std::string::npos);  // call count
}

TEST(Trace, ClearDropsEvents) {
    tracer().set_enabled(true);
    { ScopedSpan span("to-drop"); }
    tracer().clear();
    tracer().set_enabled(false);
    EXPECT_TRUE(tracer().events().empty());
}

// --- lock-contention profiler ---

TEST(LockProf, UncontendedLockCountsNoContention) {
    ProfiledMutex mu("test.lockprof.quiet");
    locks().get("test.lockprof.quiet").reset();
    for (int i = 0; i < 10; ++i) {
        std::lock_guard guard(mu);
    }
    EXPECT_EQ(mu.stats().acquisitions(), 10u);
    EXPECT_EQ(mu.stats().contentions(), 0u);
    EXPECT_EQ(mu.stats().wait_us().count, 0u);
}

TEST(LockProf, EightThreadHammerCountsEveryAcquisition) {
    ProfiledMutex mu("test.lockprof.hot");
    locks().get("test.lockprof.hot").reset();
    constexpr int kThreads = 8;
    constexpr int kOpsPerThread = 200;
    std::uint64_t shared = 0;  // mutated under mu: TSan cross-checks the wrapper
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < kOpsPerThread; ++i) {
                std::lock_guard guard(mu);
                ++shared;
            }
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(shared, static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
    EXPECT_EQ(mu.stats().acquisitions(), static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
    // Every contended acquisition contributes one wait-time sample. (How
    // many there are depends on the scheduler; the deterministic test
    // below pins down that contended acquisitions are in fact recorded.)
    EXPECT_EQ(mu.stats().wait_us().count, mu.stats().contentions());
}

TEST(LockProf, BlockedAcquisitionIsRecordedAsContended) {
    ProfiledMutex mu("test.lockprof.blocked");
    locks().get("test.lockprof.blocked").reset();
    // Retry until the waiter demonstrably lost the fast path: the release
    // is delayed until after the waiter announces it is about to lock, but
    // a loaded scheduler can still slip the unlock in first, so one round
    // is not guaranteed to contend.
    for (int attempt = 0; attempt < 100 && mu.stats().contentions() == 0; ++attempt) {
        std::atomic<bool> holder_ready{false};
        std::atomic<bool> waiter_at_lock{false};
        std::atomic<bool> release{false};
        std::thread holder([&] {
            std::lock_guard guard(mu);
            holder_ready.store(true);
            while (!release.load()) {
                std::this_thread::yield();
            }
        });
        while (!holder_ready.load()) {
            std::this_thread::yield();
        }
        std::thread waiter([&] {
            waiter_at_lock.store(true);
            std::lock_guard guard(mu);  // holder owns the lock: slow path
        });
        while (!waiter_at_lock.load()) {
            std::this_thread::yield();
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        release.store(true);
        waiter.join();
        holder.join();
    }
    EXPECT_GT(mu.stats().contentions(), 0u);
    EXPECT_EQ(mu.stats().wait_us().count, mu.stats().contentions());
    EXPECT_GT(mu.stats().acquisitions(), mu.stats().contentions());
}

TEST(LockProf, SharedMutexCountsSharedAndExclusive) {
    ProfiledSharedMutex mu("test.lockprof.shared");
    locks().get("test.lockprof.shared").reset();
    {
        std::shared_lock r1(mu);
        std::shared_lock r2(mu);  // concurrent readers both count
    }
    {
        std::unique_lock w(mu);
    }
    EXPECT_EQ(mu.stats().acquisitions(), 3u);
}

TEST(LockProf, SameNameAggregatesAcrossMutexes) {
    locks().get("test.lockprof.pool").reset();
    ProfiledMutex a("test.lockprof.pool");
    ProfiledMutex b("test.lockprof.pool");
    { std::lock_guard ga(a); }
    { std::lock_guard gb(b); }
    EXPECT_EQ(locks().get("test.lockprof.pool").acquisitions(), 2u);
}

TEST(LockOrder, RankTableMatchesDesignDoc) {
    EXPECT_EQ(lock_rank_of("srv.model").rank, 10);
    EXPECT_EQ(lock_rank_of("srv.cache_shard").rank, 20);
    EXPECT_EQ(lock_rank_of("srv.monitor").rank, 30);
    EXPECT_EQ(lock_rank_of("srv.audit").rank, 40);
    EXPECT_EQ(lock_rank_of("srv.conn.outbox").rank, 50);
    EXPECT_EQ(lock_rank_of("symbol.intern").rank, 60);
    EXPECT_EQ(lock_rank_of("test.lockprof.unranked").rank, 0);  // exempt
}

TEST(LockOrder, SilentWhenHierarchyRespected) {
    bool prev = lock_order_checking_enabled();
    set_lock_order_checking(true);
    ProfiledSharedMutex model("srv.model");
    ProfiledMutex shard("srv.cache_shard");
    ProfiledMutex monitor("srv.monitor");
    {
        // The real worker path: model (shared) -> cache shard -> monitor.
        ProfiledReadLock m(model);
        { ProfiledMutexLock s(shard); }
        { ProfiledMutexLock mon(monitor); }
    }
    {
        // Unranked locks may interleave anywhere.
        ProfiledMutex local("test.lockprof.unranked");
        ProfiledMutexLock mon(monitor);
        ProfiledMutexLock l(local);
    }
    set_lock_order_checking(prev);
}

TEST(LockOrder, TryLockBackOffIsExempt) {
    bool prev = lock_order_checking_enabled();
    set_lock_order_checking(true);
    ProfiledMutex shard("srv.cache_shard");
    ProfiledSharedMutex model("srv.model");
    {
        ProfiledMutexLock s(shard);
        // Inverted rank via try_lock: legal, because a failed try_lock
        // backs off instead of blocking — no deadlock cycle possible.
        ASSERT_TRUE(model.try_lock());
        model.unlock();
    }
    set_lock_order_checking(prev);
}

TEST(LockOrderDeathTest, AbortsOnBlockingInversion) {
    EXPECT_DEATH(
        {
            set_lock_order_checking(true);
            ProfiledMutex shard("srv.cache_shard");
            ProfiledSharedMutex model("srv.model");
            ProfiledMutexLock s(shard);
            ProfiledReadLock m(model);  // rank 10 while holding rank 20
        },
        "lock-order inversion");
}

TEST(LockOrderDeathTest, SharedAcquisitionsParticipate) {
    EXPECT_DEATH(
        {
            set_lock_order_checking(true);
            ProfiledMutex intern("symbol.intern");
            ProfiledMutex shard("srv.cache_shard");
            ProfiledMutexLock i(intern);
            ProfiledMutexLock s(shard);  // rank 20 while holding rank 60
        },
        "lock-order inversion");
}

TEST(LockProf, DisabledStillLocksButRecordsNothing) {
    ProfiledMutex mu("test.lockprof.off");
    locks().get("test.lockprof.off").reset();
    set_lock_profiling_enabled(false);
    {
        std::lock_guard guard(mu);
        EXPECT_FALSE(mu.try_lock());  // mutual exclusion unaffected
    }
    set_lock_profiling_enabled(true);
    EXPECT_EQ(mu.stats().acquisitions(), 0u);
}

TEST(LockProf, RegistryJsonIsWellFormed) {
    ProfiledMutex mu("test.lockprof.json");
    { std::lock_guard guard(mu); }
    std::string json = locks().render_json();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"test.lockprof.json\""), std::string::npos);
    EXPECT_NE(json.find("\"acquisitions\""), std::string::npos);
    EXPECT_NE(json.find("\"wait_us_p99\""), std::string::npos);
}

TEST(LockProf, SnapshotFindsNamedLock) {
    ProfiledMutex mu("test.lockprof.snap");
    locks().get("test.lockprof.snap").reset();
    { std::lock_guard guard(mu); }
    bool found = false;
    for (const auto& snap : locks().snapshot()) {
        if (snap.name != "test.lockprof.snap") continue;
        found = true;
        EXPECT_EQ(snap.acquisitions, 1u);
        EXPECT_EQ(snap.contentions, 0u);
        EXPECT_EQ(snap.contention_rate(), 0.0);
    }
    EXPECT_TRUE(found);
}

// --- request-scoped tracing ---

TEST(ReqTrace, SpanTreeRecordsParentLinks) {
    TraceContext ctx(7);
    auto root = ctx.begin_span("request");
    auto queue = ctx.begin_span("queue");
    ctx.end_span(queue);
    auto solve = ctx.begin_span("solve");
    auto ground = ctx.begin_span("ground");
    ctx.end_span(ground);
    ctx.end_span(solve);
    ctx.end_span(root);

    ASSERT_EQ(ctx.spans().size(), 4u);
    EXPECT_EQ(ctx.trace_id(), 7u);
    EXPECT_EQ(ctx.spans()[root].parent, -1);
    EXPECT_EQ(ctx.spans()[queue].parent, static_cast<std::int32_t>(root));
    EXPECT_EQ(ctx.spans()[solve].parent, static_cast<std::int32_t>(root));
    EXPECT_EQ(ctx.spans()[ground].parent, static_cast<std::int32_t>(solve));
    EXPECT_EQ(ctx.find("solve"), solve);
    EXPECT_EQ(ctx.find("missing"), TraceContext::npos);
}

TEST(ReqTrace, DurationsNestMonotonically) {
    TraceContext ctx(1);
    auto root = ctx.begin_span("request");
    auto inner = ctx.begin_span("work");
    spin_for_us(200);
    ctx.end_span(inner);
    ctx.end_span(root);
    EXPECT_GT(ctx.spans()[inner].duration_us, 0u);
    EXPECT_GE(ctx.spans()[root].duration_us, ctx.spans()[inner].duration_us);
    EXPECT_EQ(ctx.total_us(), ctx.spans()[root].duration_us);
}

TEST(ReqTrace, ScopeInstallsAndRestoresThreadLocal) {
    EXPECT_EQ(current_trace(), nullptr);
    TraceContext outer(1), inner(2);
    {
        TraceContextScope outer_scope(&outer);
        EXPECT_EQ(current_trace(), &outer);
        {
            TraceContextScope inner_scope(&inner);
            EXPECT_EQ(current_trace(), &inner);
        }
        EXPECT_EQ(current_trace(), &outer);
    }
    EXPECT_EQ(current_trace(), nullptr);
    // Another thread starts with no context even while this one has one.
    TraceContextScope scope(&outer);
    TraceContext* seen = &outer;
    std::thread([&] { seen = current_trace(); }).join();
    EXPECT_EQ(seen, nullptr);
}

TEST(ReqTrace, TracePhaseOnNullContextIsANoOp) {
    TracePhase phase(nullptr, "ignored");  // must not crash or allocate a span
    TraceContext ctx(3);
    {
        TraceContextScope scope(&ctx);
        TracePhase live(current_trace(), "real");
    }
    ASSERT_EQ(ctx.spans().size(), 1u);
    EXPECT_EQ(ctx.spans()[0].name, "real");
}

TEST(ReqTrace, ChromeTraceJsonCarriesTraceIdLanes) {
    TraceContext a(11), b(12);
    {
        auto root = a.begin_span("request");
        a.end_span(root);
    }
    {
        auto root = b.begin_span("request");
        b.end_span(root);
    }
    std::string json = chrome_trace_json({&a, &b});
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"tid\":11"), std::string::npos);
    EXPECT_NE(json.find("\"tid\":12"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

}  // namespace
}  // namespace agenp::obs
