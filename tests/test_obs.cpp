#include <gtest/gtest.h>

#include <cctype>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace agenp::obs {
namespace {

// --- minimal JSON validator --------------------------------------------------
// Recursive-descent syntax checker, enough to assert that render_json() and
// chrome_trace_json() emit well-formed JSON without pulling in a library.

class JsonChecker {
public:
    explicit JsonChecker(std::string_view text) : text_(text) {}

    bool valid() {
        skip_ws();
        if (!value()) return false;
        skip_ws();
        return pos_ == text_.size();
    }

private:
    bool value() {
        if (pos_ >= text_.size()) return false;
        switch (text_[pos_]) {
            case '{': return object();
            case '[': return array();
            case '"': return string();
            case 't': return literal("true");
            case 'f': return literal("false");
            case 'n': return literal("null");
            default: return number();
        }
    }

    bool object() {
        ++pos_;  // '{'
        skip_ws();
        if (peek() == '}') { ++pos_; return true; }
        while (true) {
            skip_ws();
            if (!string()) return false;
            skip_ws();
            if (peek() != ':') return false;
            ++pos_;
            skip_ws();
            if (!value()) return false;
            skip_ws();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == '}') { ++pos_; return true; }
            return false;
        }
    }

    bool array() {
        ++pos_;  // '['
        skip_ws();
        if (peek() == ']') { ++pos_; return true; }
        while (true) {
            skip_ws();
            if (!value()) return false;
            skip_ws();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == ']') { ++pos_; return true; }
            return false;
        }
    }

    bool string() {
        if (peek() != '"') return false;
        ++pos_;
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == '"') { ++pos_; return true; }
            if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control char
            if (c == '\\') {
                ++pos_;
                if (pos_ >= text_.size()) return false;
                char e = text_[pos_];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos_;
                        if (pos_ >= text_.size() || !std::isxdigit(
                                static_cast<unsigned char>(text_[pos_]))) {
                            return false;
                        }
                    }
                } else if (std::string_view("\"\\/bfnrt").find(e) == std::string_view::npos) {
                    return false;
                }
            }
            ++pos_;
        }
        return false;  // unterminated
    }

    bool number() {
        std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
        if (peek() == '.') {
            ++pos_;
            while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-') ++pos_;
            while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
        }
        return pos_ > start;
    }

    bool literal(std::string_view word) {
        if (text_.substr(pos_, word.size()) != word) return false;
        pos_ += word.size();
        return true;
    }

    char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
    void skip_ws() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
                text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

bool is_valid_json(std::string_view text) { return JsonChecker(text).valid(); }

// Busy-wait so span durations are real elapsed time (sleep granularity on
// loaded CI machines would make the self-time assertions flaky).
void spin_for_us(std::uint64_t us) {
    std::uint64_t end = monotonic_ns() + us * 1000;
    while (monotonic_ns() < end) {
    }
}

// --- instruments -------------------------------------------------------------

TEST(Counter, AddAndReset) {
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAddNegative) {
    Gauge g;
    g.set(10);
    g.add(-25);
    EXPECT_EQ(g.value(), -15);
    g.set(7);
    EXPECT_EQ(g.value(), 7);
    g.reset();
    EXPECT_EQ(g.value(), 0);
}

TEST(Histogram, CountSumMinMax) {
    Histogram h;
    auto empty = h.snapshot();
    EXPECT_EQ(empty.count, 0u);
    EXPECT_EQ(empty.min, 0u);
    EXPECT_EQ(empty.max, 0u);
    EXPECT_EQ(empty.mean(), 0.0);

    h.observe(3);
    h.observe(900);
    h.observe(17);
    auto s = h.snapshot();
    EXPECT_EQ(s.count, 3u);
    EXPECT_EQ(s.sum, 920u);
    EXPECT_EQ(s.min, 3u);
    EXPECT_EQ(s.max, 900u);
    EXPECT_NEAR(s.mean(), 920.0 / 3.0, 1e-9);

    h.reset();
    EXPECT_EQ(h.snapshot().count, 0u);
}

TEST(Histogram, QuantilesOfConstantStream) {
    Histogram h;
    for (int i = 0; i < 10; ++i) h.observe(100);
    auto s = h.snapshot();
    // min == max == 100 clips the bucket interpolation to the exact value.
    EXPECT_EQ(s.quantile(0.0), 100.0);
    EXPECT_EQ(s.quantile(0.5), 100.0);
    EXPECT_EQ(s.quantile(1.0), 100.0);
}

TEST(Histogram, QuantilesAreOrderedAndBounded) {
    Histogram h;
    for (std::uint64_t v = 1; v <= 1000; ++v) h.observe(v);
    auto s = h.snapshot();
    double p10 = s.quantile(0.10);
    double p50 = s.quantile(0.50);
    double p99 = s.quantile(0.99);
    EXPECT_LE(p10, p50);
    EXPECT_LE(p50, p99);
    EXPECT_GE(p10, static_cast<double>(s.min));
    EXPECT_LE(p99, static_cast<double>(s.max));
    // Exponential buckets are coarse, but the median of 1..1000 should land
    // within its bucket [256, 511].
    EXPECT_GE(p50, 256.0);
    EXPECT_LE(p50, 512.0);
}

TEST(Histogram, ZeroAndHugeValuesDoNotClip) {
    Histogram h;
    h.observe(0);
    h.observe(~std::uint64_t{0});
    auto s = h.snapshot();
    EXPECT_EQ(s.count, 2u);
    EXPECT_EQ(s.min, 0u);
    EXPECT_EQ(s.max, ~std::uint64_t{0});
}

// --- registry ----------------------------------------------------------------

TEST(Registry, SameNameReturnsSameInstrument) {
    MetricsRegistry r;
    EXPECT_EQ(&r.counter("a"), &r.counter("a"));
    EXPECT_NE(&r.counter("a"), &r.counter("b"));
    // Counter / gauge / histogram namespaces are independent.
    EXPECT_EQ(&r.gauge("a"), &r.gauge("a"));
    EXPECT_EQ(&r.histogram("a"), &r.histogram("a"));
}

TEST(Registry, ReferencesSurviveLaterRegistrations) {
    MetricsRegistry r;
    Counter& first = r.counter("stable");
    first.add(5);
    // Register enough names to force rebalancing in a node-unstable container.
    for (int i = 0; i < 200; ++i) r.counter("filler." + std::to_string(i));
    EXPECT_EQ(&r.counter("stable"), &first);
    EXPECT_EQ(first.value(), 5u);
}

TEST(Registry, ConcurrentIncrementsAreExact) {
    MetricsRegistry r;
    constexpr int kThreads = 8;
    constexpr std::uint64_t kPerThread = 20'000;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&r] {
            // Lookup inside the loop exercises concurrent registration too.
            for (std::uint64_t i = 0; i < kPerThread; ++i) r.counter("shared").add();
        });
    }
    for (auto& w : workers) w.join();
    EXPECT_EQ(r.counter("shared").value(), kThreads * kPerThread);
}

TEST(Registry, ConcurrentHistogramObservations) {
    MetricsRegistry r;
    constexpr int kThreads = 4;
    constexpr std::uint64_t kPerThread = 10'000;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&r] {
            Histogram& h = r.histogram("lat");
            for (std::uint64_t i = 1; i <= kPerThread; ++i) h.observe(i);
        });
    }
    for (auto& w : workers) w.join();
    auto s = r.histogram("lat").snapshot();
    EXPECT_EQ(s.count, kThreads * kPerThread);
    EXPECT_EQ(s.sum, kThreads * (kPerThread * (kPerThread + 1) / 2));
    EXPECT_EQ(s.min, 1u);
    EXPECT_EQ(s.max, kPerThread);
}

TEST(Registry, RenderTextListsInstruments) {
    MetricsRegistry r;
    r.counter("alpha.count").add(3);
    r.gauge("beta.level").set(-2);
    r.histogram("gamma.time_us").observe(10);
    auto text = r.render_text();
    EXPECT_NE(text.find("alpha.count"), std::string::npos);
    EXPECT_NE(text.find("3"), std::string::npos);
    EXPECT_NE(text.find("beta.level"), std::string::npos);
    EXPECT_NE(text.find("-2"), std::string::npos);
    EXPECT_NE(text.find("gamma.time_us"), std::string::npos);
    EXPECT_NE(text.find("count=1"), std::string::npos);
}

TEST(Registry, RenderJsonIsWellFormed) {
    MetricsRegistry r;
    EXPECT_TRUE(is_valid_json(r.render_json())) << r.render_json();
    r.counter("c.one").add(1);
    r.gauge("g.one").set(-7);
    r.histogram("h.one").observe(42);
    r.counter("weird \"name\"\\with\nescapes").add(9);
    auto json = r.render_json();
    EXPECT_TRUE(is_valid_json(json)) << json;
    EXPECT_NE(json.find("\"c.one\":1"), std::string::npos);
    EXPECT_NE(json.find("\"g.one\":-7"), std::string::npos);
    EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

TEST(Registry, ResetZeroesButKeepsNames) {
    MetricsRegistry r;
    r.counter("keep").add(11);
    r.histogram("keep_us").observe(5);
    r.reset();
    EXPECT_EQ(r.counter("keep").value(), 0u);
    EXPECT_EQ(r.histogram("keep_us").snapshot().count, 0u);
    auto s = r.snapshot();
    ASSERT_EQ(s.counters.size(), 1u);
    EXPECT_EQ(s.counters[0].first, "keep");
}

TEST(Registry, GlobalRegistryIsASingleton) {
    EXPECT_EQ(&metrics(), &metrics());
}

TEST(Metrics, DisabledSkipsScopedTimer) {
    Histogram h;
    set_metrics_enabled(false);
    { ScopedTimer t(h); }
    set_metrics_enabled(true);
    EXPECT_EQ(h.snapshot().count, 0u);
    { ScopedTimer t(h); }
    EXPECT_EQ(h.snapshot().count, 1u);
}

// --- tracing -----------------------------------------------------------------

TEST(Trace, DisabledRecorderCapturesNothing) {
    tracer().set_enabled(false);
    tracer().clear();
    { ScopedSpan span("invisible"); }
    EXPECT_TRUE(tracer().events().empty());
}

TEST(Trace, SpanNestingAndSelfTime) {
    tracer().set_enabled(true);
    tracer().clear();
    {
        ScopedSpan outer("outer", "test");
        spin_for_us(2000);
        {
            ScopedSpan inner("inner", "test");
            spin_for_us(2000);
        }
        spin_for_us(1000);
    }
    tracer().set_enabled(false);

    auto events = tracer().events();
    ASSERT_EQ(events.size(), 2u);
    // Spans are recorded at destruction: inner first, outer second.
    const auto& inner = events[0];
    const auto& outer = events[1];
    EXPECT_EQ(inner.name, "inner");
    EXPECT_EQ(outer.name, "outer");
    EXPECT_EQ(inner.depth, 1u);
    EXPECT_EQ(outer.depth, 0u);
    EXPECT_EQ(inner.thread, outer.thread);

    // The child lies inside the parent on the timeline.
    EXPECT_GE(inner.start_us, outer.start_us);
    EXPECT_LE(inner.start_us + inner.duration_us, outer.start_us + outer.duration_us);

    // Self time excludes the child: ~3ms of the outer ~5ms.
    EXPECT_LE(inner.self_us, inner.duration_us);
    EXPECT_GE(outer.duration_us, inner.duration_us);
    EXPECT_LE(outer.self_us, outer.duration_us - inner.duration_us + 100);
    EXPECT_GE(outer.self_us + inner.duration_us + 100, outer.duration_us);
}

TEST(Trace, ChromeTraceJsonIsWellFormed) {
    tracer().set_enabled(true);
    tracer().clear();
    {
        ScopedSpan a("phase.a", "test");
        ScopedSpan b("phase \"b\"\\nested", "test");
        spin_for_us(100);
    }
    tracer().set_enabled(false);

    auto json = tracer().chrome_trace_json();
    EXPECT_TRUE(is_valid_json(json)) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
    EXPECT_NE(json.find("phase.a"), std::string::npos);
}

TEST(Trace, FlatProfileAggregatesByName) {
    tracer().set_enabled(true);
    tracer().clear();
    for (int i = 0; i < 3; ++i) {
        ScopedSpan span("repeated", "test");
        spin_for_us(200);
    }
    tracer().set_enabled(false);

    auto profile = tracer().flat_profile();
    EXPECT_NE(profile.find("repeated"), std::string::npos);
    EXPECT_NE(profile.find("3"), std::string::npos);  // call count
}

TEST(Trace, ClearDropsEvents) {
    tracer().set_enabled(true);
    { ScopedSpan span("to-drop"); }
    tracer().clear();
    tracer().set_enabled(false);
    EXPECT_TRUE(tracer().events().empty());
}

}  // namespace
}  // namespace agenp::obs
