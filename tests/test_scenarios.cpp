#include <gtest/gtest.h>

#include "ml/decision_tree.hpp"
#include "ml/metrics.hpp"
#include "scenarios/cav/cav.hpp"
#include "scenarios/cav/perception.hpp"
#include "scenarios/datashare/datashare.hpp"
#include "scenarios/fedlearn/fedlearn.hpp"
#include "scenarios/resupply/resupply.hpp"

namespace agenp::scenarios {
namespace {

// ---------------------------------------------------------------------------
// CAV
// ---------------------------------------------------------------------------

TEST(Cav, GroundTruthRespectsLoaCeilings) {
    cav::Instance x;
    x.task = 2;  // overtake, requires 3
    x.env = {.vehicle_loa = 5, .region_limit = 5, .weather = 0};
    EXPECT_TRUE(cav::ground_truth(x));
    x.env.vehicle_loa = 2;
    EXPECT_FALSE(cav::ground_truth(x));
    x.env = {.vehicle_loa = 5, .region_limit = 2, .weather = 0};
    EXPECT_FALSE(cav::ground_truth(x));
}

TEST(Cav, FogRestrictsHighAutonomyTasks) {
    cav::Instance x;
    x.task = 4;  // full_auto
    x.env = {.vehicle_loa = 5, .region_limit = 5, .weather = 2 /*fog*/};
    EXPECT_FALSE(cav::ground_truth(x));
    x.task = 0;  // lane_keep
    EXPECT_TRUE(cav::ground_truth(x));
}

TEST(Cav, ReferenceModelMatchesGroundTruthEverywhere) {
    auto model = cav::reference_model();
    util::Rng rng(41);
    for (int i = 0; i < 150; ++i) {
        auto x = cav::sample_instance(rng);
        bool predicted = asg::in_language(model, cav::request_tokens(x),
                                          cav::context_program(x.env));
        EXPECT_EQ(predicted, x.accepted) << cfg::detokenize(cav::request_tokens(x));
    }
}

TEST(Cav, SymbolicLearnerRecoversPolicyFromFewExamples) {
    util::Rng rng(42);
    auto train = cav::sample_instances(40, rng);
    std::vector<ilp::LabelledExample> examples;
    for (const auto& x : train) examples.push_back(cav::to_symbolic(x));
    ilp::SymbolicPolicyClassifier clf(cav::initial_asg(), cav::hypothesis_space());
    ASSERT_TRUE(clf.fit(examples)) << clf.last_result().failure_reason;

    auto test = cav::sample_instances(200, rng);
    std::size_t correct = 0;
    for (const auto& x : test) {
        correct += clf.predict(cav::request_tokens(x), cav::context_program(x.env)) == x.accepted;
    }
    EXPECT_GT(static_cast<double>(correct) / 200.0, 0.97);
}

TEST(Cav, DatasetMatchesInstances) {
    util::Rng rng(43);
    auto instances = cav::sample_instances(50, rng);
    auto d = cav::to_dataset(instances);
    ASSERT_EQ(d.size(), 50u);
    EXPECT_EQ(d.feature_count(), 4u);
    for (std::size_t i = 0; i < d.size(); ++i) {
        EXPECT_EQ(d.label(i) == 1, instances[i].accepted);
    }
}

TEST(Cav, BaselinesLearnTheTaskWithEnoughData) {
    util::Rng rng(44);
    auto train = cav::to_dataset(cav::sample_instances(400, rng));
    auto test = cav::to_dataset(cav::sample_instances(200, rng));
    ml::DecisionTree tree;
    tree.fit(train);
    EXPECT_GT(ml::evaluate(tree, test).accuracy(), 0.85);
}

// ---------------------------------------------------------------------------
// CAV capability sharing
// ---------------------------------------------------------------------------

TEST(CavSharing, GroundTruthGates) {
    cav::SharingInstance x;
    x.capability = 2;  // planning, needs 3
    x.context = {.peer_loa = 4, .distance = 1, .window = 0};
    EXPECT_TRUE(cav::sharing_ground_truth(x));
    x.context.peer_loa = 2;
    EXPECT_FALSE(cav::sharing_ground_truth(x));  // peer too weak
    x.context = {.peer_loa = 4, .distance = 3, .window = 0};
    EXPECT_FALSE(cav::sharing_ground_truth(x));  // too far
    x.context = {.peer_loa = 4, .distance = 1, .window = 1};
    EXPECT_FALSE(cav::sharing_ground_truth(x));  // closing window, heavy capability
    x.capability = 0;                            // sensing, needs 1
    EXPECT_TRUE(cav::sharing_ground_truth(x));   // light capability still fine
}

TEST(CavSharing, ReferenceModelMatchesGroundTruth) {
    auto model = cav::sharing_reference_model();
    util::Rng rng(52);
    for (int i = 0; i < 150; ++i) {
        auto x = cav::sample_sharing_instance(rng);
        bool predicted = asg::in_language(model, cav::sharing_tokens(x),
                                          cav::sharing_context_program(x.context));
        EXPECT_EQ(predicted, x.allowed);
    }
}

TEST(CavSharing, LearnerRecoversSharingPolicy) {
    util::Rng rng(53);
    auto train = cav::sample_sharing_instances(90, rng);
    std::vector<ilp::LabelledExample> examples;
    for (const auto& x : train) examples.push_back(cav::to_symbolic(x));
    ilp::SymbolicPolicyClassifier clf(cav::sharing_asg(), cav::sharing_space());
    ASSERT_TRUE(clf.fit(examples)) << clf.last_result().failure_reason;
    auto test = cav::sample_sharing_instances(200, rng);
    std::size_t correct = 0;
    for (const auto& x : test) {
        correct += clf.predict(cav::sharing_tokens(x), cav::sharing_context_program(x.context)) ==
                   x.allowed;
    }
    EXPECT_GT(static_cast<double>(correct) / 200.0, 0.95);
}

// ---------------------------------------------------------------------------
// CAV neurosymbolic perception
// ---------------------------------------------------------------------------

TEST(Perception, ClassifiesNominalSensorsWell) {
    util::Rng rng(61);
    cav::WeatherPerception perception;
    perception.fit(150, rng, 1.0);
    EXPECT_GT(perception.holdout_accuracy(150, rng, 1.0), 0.9);
}

TEST(Perception, DegradesWithSensorNoise) {
    util::Rng rng(62);
    cav::WeatherPerception perception;
    perception.fit(150, rng, 1.0);
    double clean = perception.holdout_accuracy(150, rng, 0.5);
    double noisy = perception.holdout_accuracy(150, rng, 4.0);
    EXPECT_GT(clean, noisy);
}

TEST(Perception, PerceivedContextFeedsSymbolicPolicy) {
    util::Rng rng(63);
    cav::WeatherPerception perception;
    perception.fit(200, rng, 0.5);  // near-perfect sensors
    auto policy = cav::reference_model();
    std::size_t agree = 0;
    const int kTrials = 120;
    for (int i = 0; i < kTrials; ++i) {
        auto x = cav::sample_instance(rng);
        auto reading = cav::sample_reading(x.env.weather, rng, 0.5);
        bool perceived = asg::in_language(policy, cav::request_tokens(x),
                                          perception.perceived_context(x.env, reading));
        bool oracle = asg::in_language(policy, cav::request_tokens(x),
                                       cav::context_program(x.env));
        agree += perceived == oracle;
    }
    EXPECT_GT(static_cast<double>(agree) / kTrials, 0.95);
}

// ---------------------------------------------------------------------------
// Resupply
// ---------------------------------------------------------------------------

TEST(Resupply, GroundTruthRules) {
    resupply::Plan plan{.route = 1 /*ridge*/, .slot = 0, .escort = 2};
    resupply::MissionContext ctx{.threat = 2, .risk_appetite = 3, .weather = 2 /*storm*/};
    EXPECT_FALSE(resupply::ground_truth(plan, ctx));  // ridge in storm
    plan.route = 0;
    EXPECT_TRUE(resupply::ground_truth(plan, ctx));
    ctx.threat = 4;
    EXPECT_FALSE(resupply::ground_truth(plan, ctx));  // too risky
    ctx.threat = 2;
    plan.slot = 1;
    plan.escort = 1;
    EXPECT_FALSE(resupply::ground_truth(plan, ctx));  // night without escort
}

TEST(Resupply, PlanningPhaseIsConservative) {
    // Same plan, same conditions: acceptable in execution, rejected during
    // planning (speculative weather demands a full escort).
    resupply::Plan plan{.route = 0, .slot = 0, .escort = 1};
    resupply::MissionContext ctx{.threat = 1, .risk_appetite = 3, .weather = 0,
                                 .phase = resupply::Phase::Execution};
    EXPECT_TRUE(resupply::ground_truth(plan, ctx));
    ctx.phase = resupply::Phase::Planning;
    EXPECT_FALSE(resupply::ground_truth(plan, ctx));
}

TEST(Resupply, ReferenceModelMatchesGroundTruth) {
    auto model = resupply::reference_model();
    util::Rng rng(45);
    for (int i = 0; i < 150; ++i) {
        auto x = resupply::sample_instance(rng);
        bool predicted = asg::in_language(model, resupply::plan_tokens(x.plan),
                                          resupply::context_program(x.context));
        EXPECT_EQ(predicted, x.acceptable);
    }
}

TEST(Resupply, CampaignAccuracyImprovesWithExperience) {
    resupply::CampaignOptions options;
    options.missions = 8;
    options.plans_per_mission = 10;
    options.eval_per_mission = 40;
    options.risk_shift_at = 4;
    auto outcomes = resupply::run_campaign(options);
    ASSERT_EQ(outcomes.size(), 8u);
    // Experience accumulates monotonically.
    for (std::size_t m = 1; m < outcomes.size(); ++m) {
        EXPECT_GT(outcomes[m].training_examples, outcomes[m - 1].training_examples);
    }
    // Accuracy improves with experience and ends near-perfect (evaluation
    // is on random unseen contexts, so early missions generalize poorly).
    EXPECT_GE(outcomes.back().accuracy, outcomes.front().accuracy);
    EXPECT_GE(outcomes.back().accuracy, 0.9);
    EXPECT_TRUE(outcomes.back().model_found);
}

TEST(Resupply, LearnerRecoversPolicy) {
    util::Rng rng(46);
    auto train = resupply::sample_instances(60, rng);
    std::vector<ilp::LabelledExample> examples;
    for (const auto& x : train) examples.push_back(resupply::to_symbolic(x));
    ilp::SymbolicPolicyClassifier clf(resupply::initial_asg(), resupply::hypothesis_space());
    ASSERT_TRUE(clf.fit(examples)) << clf.last_result().failure_reason;
    auto test = resupply::sample_instances(150, rng);
    std::size_t correct = 0;
    for (const auto& x : test) {
        correct += clf.predict(resupply::plan_tokens(x.plan),
                               resupply::context_program(x.context)) == x.acceptable;
    }
    EXPECT_GT(static_cast<double>(correct) / 150.0, 0.95);
}

// ---------------------------------------------------------------------------
// Data sharing
// ---------------------------------------------------------------------------

TEST(Datashare, GroundTruthRules) {
    datashare::Item item{.kind = 0, .quality = 3, .value = 2};
    datashare::PartnerContext partner{.trust = 3};
    EXPECT_TRUE(datashare::share_ground_truth(item, partner));
    partner.trust = 1;
    EXPECT_FALSE(datashare::share_ground_truth(item, partner));  // value above trust
    partner.trust = 3;
    item.quality = 1;
    EXPECT_FALSE(datashare::share_ground_truth(item, partner));  // junk quality
    item = {.kind = 1 /*audio*/, .quality = 4, .value = 0};
    partner.trust = 1;
    EXPECT_FALSE(datashare::share_ground_truth(item, partner));  // audio to low trust
}

TEST(Datashare, ReferenceModelMatchesGroundTruth) {
    auto model = datashare::share_reference_model();
    util::Rng rng(47);
    for (int i = 0; i < 150; ++i) {
        auto x = datashare::sample_share_instance(rng);
        bool predicted = asg::in_language(model, datashare::share_tokens(x.item),
                                          datashare::share_context(x.partner));
        EXPECT_EQ(predicted, x.share);
    }
}

TEST(Datashare, LearnerRecoversSharingPolicy) {
    util::Rng rng(48);
    auto train = datashare::sample_share_instances(60, rng);
    std::vector<ilp::LabelledExample> examples;
    for (const auto& x : train) examples.push_back(datashare::to_symbolic(x));
    ilp::SymbolicPolicyClassifier clf(datashare::share_asg(), datashare::share_space());
    ASSERT_TRUE(clf.fit(examples)) << clf.last_result().failure_reason;
    auto test = datashare::sample_share_instances(150, rng);
    std::size_t correct = 0;
    for (const auto& x : test) {
        correct += clf.predict(datashare::share_tokens(x.item),
                               datashare::share_context(x.partner)) == x.share;
    }
    EXPECT_GT(static_cast<double>(correct) / 150.0, 0.95);
}

TEST(Datashare, ServiceSelectionGroundTruth) {
    datashare::PartnerContext trusted{.trust = 3};
    datashare::PartnerContext shady{.trust = 1};
    // vision_scorer on image, trusted partner: fine.
    EXPECT_TRUE(datashare::service_ground_truth(0, 0, trusted));
    EXPECT_FALSE(datashare::service_ground_truth(0, 1, trusted));  // vision on audio
    EXPECT_FALSE(datashare::service_ground_truth(0, 0, shady));    // low trust
    EXPECT_TRUE(datashare::service_ground_truth(3, 0, shady));     // redactor always ok
}

TEST(Datashare, LearnerRecoversServiceSelection) {
    util::Rng rng(49);
    auto train = datashare::sample_service_instances(80, rng);
    std::vector<ilp::LabelledExample> examples;
    for (const auto& x : train) examples.push_back(datashare::to_symbolic(x));
    ilp::LearnOptions options;
    options.max_cost = 30;
    ilp::SymbolicPolicyClassifier clf(datashare::service_asg(), datashare::service_space(), options);
    ASSERT_TRUE(clf.fit(examples)) << clf.last_result().failure_reason;
    auto test = datashare::sample_service_instances(150, rng);
    std::size_t correct = 0;
    for (const auto& x : test) {
        correct += clf.predict(datashare::service_tokens(x.service, x.kind),
                               datashare::share_context(x.partner)) == x.valid;
    }
    EXPECT_GT(static_cast<double>(correct) / 150.0, 0.93);
}

// ---------------------------------------------------------------------------
// Federated learning
// ---------------------------------------------------------------------------

TEST(Fedlearn, GroundTruthActionGates) {
    fedlearn::Insight good{.trust = 4, .accuracy = 9, .staleness = 0};
    EXPECT_TRUE(fedlearn::ground_truth(0, good));   // adopt
    EXPECT_TRUE(fedlearn::ground_truth(1, good));   // combine
    EXPECT_TRUE(fedlearn::ground_truth(2, good));   // retrain
    fedlearn::Insight stale{.trust = 4, .accuracy = 9, .staleness = 4};
    EXPECT_FALSE(fedlearn::ground_truth(0, stale));
    EXPECT_TRUE(fedlearn::ground_truth(1, stale));
    fedlearn::Insight untrusted{.trust = 0, .accuracy = 9, .staleness = 0};
    EXPECT_FALSE(fedlearn::ground_truth(2, untrusted));
}

TEST(Fedlearn, ReferenceModelAllowedActions) {
    auto model = fedlearn::reference_model();
    fedlearn::Insight good{.trust = 4, .accuracy = 9, .staleness = 0};
    auto allowed = fedlearn::allowed_actions(model, good);
    EXPECT_EQ(allowed, (std::vector<std::string>{"adopt", "combine", "retrain"}));
    fedlearn::Insight meh{.trust = 2, .accuracy = 6, .staleness = 3};
    EXPECT_EQ(fedlearn::allowed_actions(model, meh),
              (std::vector<std::string>{"combine", "retrain"}));
}

TEST(Fedlearn, ReferenceModelMatchesGroundTruth) {
    auto model = fedlearn::reference_model();
    util::Rng rng(50);
    for (int i = 0; i < 200; ++i) {
        auto x = fedlearn::sample_instance(rng);
        bool predicted = asg::in_language(model, fedlearn::action_tokens(x.action),
                                          fedlearn::context_program(x.insight));
        EXPECT_EQ(predicted, x.allowed);
    }
}

TEST(Fedlearn, LearnerRecoversGovernancePolicy) {
    util::Rng rng(51);
    auto train = fedlearn::sample_instances(150, rng);
    std::vector<ilp::LabelledExample> examples;
    for (const auto& x : train) examples.push_back(fedlearn::to_symbolic(x));
    ilp::LearnOptions options;
    options.max_cost = 30;
    ilp::SymbolicPolicyClassifier clf(fedlearn::initial_asg(), fedlearn::hypothesis_space(), options);
    ASSERT_TRUE(clf.fit(examples)) << clf.last_result().failure_reason;
    auto test = fedlearn::sample_instances(200, rng);
    std::size_t correct = 0;
    for (const auto& x : test) {
        correct += clf.predict(fedlearn::action_tokens(x.action),
                               fedlearn::context_program(x.insight)) == x.allowed;
    }
    EXPECT_GT(static_cast<double>(correct) / 200.0, 0.95);
}

// ---------------------------------------------------------------------------
// Cross-scenario properties
// ---------------------------------------------------------------------------

// Definition-3 soundness: whatever hypothesis the learner returns must
// classify every training example correctly (positives accepted, negatives
// rejected) under full ASG membership.
class LearnerSoundnessSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LearnerSoundnessSweep, HypothesisConsistentWithTrainingSet) {
    util::Rng rng(GetParam());
    auto train = cav::sample_instances(30, rng);
    ilp::LearningTask task;
    task.initial = cav::initial_asg();
    task.space = cav::hypothesis_space();
    for (const auto& x : train) {
        auto ex = cav::to_symbolic(x);
        auto& bucket = ex.accepted ? task.positive : task.negative;
        bucket.emplace_back(ex.request, ex.context);
    }
    auto result = ilp::learn(task);
    ASSERT_TRUE(result.found) << result.failure_reason;
    auto learned = task.initial.with_rules(result.hypothesis);
    for (const auto& ex : task.positive) {
        EXPECT_TRUE(asg::in_language(learned, ex.string, ex.context))
            << cfg::detokenize(ex.string);
    }
    for (const auto& ex : task.negative) {
        EXPECT_FALSE(asg::in_language(learned, ex.string, ex.context))
            << cfg::detokenize(ex.string);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LearnerSoundnessSweep,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

// Reference-model agreement: each scenario's hand-written GPM and its
// ground-truth function agree on every sampled instance (guards against
// the two drifting apart as scenarios evolve).
TEST(ScenarioConsistency, AllReferenceModelsTrackGroundTruth) {
    util::Rng rng(909);
    auto cav_model = cav::reference_model();
    auto share_model = datashare::share_reference_model();
    auto fed_model = fedlearn::reference_model();
    for (int i = 0; i < 60; ++i) {
        auto a = cav::sample_instance(rng);
        EXPECT_EQ(asg::in_language(cav_model, cav::request_tokens(a),
                                   cav::context_program(a.env)),
                  a.accepted);
        auto b = datashare::sample_share_instance(rng);
        EXPECT_EQ(asg::in_language(share_model, datashare::share_tokens(b.item),
                                   datashare::share_context(b.partner)),
                  b.share);
        auto c = fedlearn::sample_instance(rng);
        EXPECT_EQ(asg::in_language(fed_model, fedlearn::action_tokens(c.action),
                                   fedlearn::context_program(c.insight)),
                  c.allowed);
    }
}

}  // namespace
}  // namespace agenp::scenarios
