#include <gtest/gtest.h>

#include "agenp/pcp.hpp"
#include "agenp/similarity.hpp"
#include "asp/parser.hpp"
#include "nl/translate.hpp"
#include "xacml/learning_bridge.hpp"

namespace agenp {
namespace {

using cfg::tokenize;

const char* kTaskInitial = R"(
    request -> "do" task
    task -> "patrol" { requires(2). }
    task -> "strike" { requires(4). }
    task -> "observe" { requires(1). }
)";

ilp::HypothesisSpace task_space() {
    ilp::ModeBias bias;
    bias.body.push_back(ilp::ModeAtom("requires", {ilp::ArgSpec::var("lvl")}, 2));
    bias.body.push_back(ilp::ModeAtom("maxloa", {ilp::ArgSpec::var("lvl")}));
    bias.comparisons.push_back(ilp::ComparisonMode(
        "lvl", {asp::Comparison::Op::Gt}, false, true));
    bias.max_body_atoms = 2;
    bias.max_vars = 2;
    return ilp::generate_space(bias, {0});
}

// ---------------------------------------------------------------------------
// Context / model similarity
// ---------------------------------------------------------------------------

TEST(Similarity, IdenticalContextsScoreOne) {
    auto a = asp::parse_program("maxloa(3). weather(fog).");
    EXPECT_DOUBLE_EQ(framework::context_similarity(a, a), 1.0);
}

TEST(Similarity, DisjointContextsScoreZero) {
    auto a = asp::parse_program("maxloa(3).");
    auto b = asp::parse_program("weather(fog).");
    EXPECT_DOUBLE_EQ(framework::context_similarity(a, b), 0.0);
}

TEST(Similarity, PartialOverlapIsJaccard) {
    auto a = asp::parse_program("maxloa(3). weather(fog).");
    auto b = asp::parse_program("maxloa(3). weather(rain).");
    EXPECT_NEAR(framework::context_similarity(a, b), 1.0 / 3.0, 1e-12);
}

TEST(Similarity, EmptyContextsCountIdentical) {
    EXPECT_DOUBLE_EQ(framework::context_similarity({}, {}), 1.0);
}

TEST(Similarity, ModelSimilarityTracksSharedRules) {
    auto base = asg::AnswerSetGrammar::parse(kTaskInitial);
    auto a = base.with_rules({{asp::parse_rule(":- requires(L)@2, maxloa(M), L > M."), 0}});
    auto b = base.with_rules({{asp::parse_rule(":- requires(L)@2, maxloa(M), L > M."), 0},
                              {asp::parse_rule(":- requires(L)@2, L > 3."), 0}});
    double ab = framework::model_similarity(a, b);
    double aa = framework::model_similarity(a, a);
    EXPECT_DOUBLE_EQ(aa, 1.0);
    EXPECT_GT(ab, 0.5);
    EXPECT_LT(ab, 1.0);
}

// ---------------------------------------------------------------------------
// AdaptationCache
// ---------------------------------------------------------------------------

ilp::LearningTask loa_task(int boundary) {
    // Valid tasks: those with requires <= boundary.
    ilp::LearningTask task;
    task.initial = asg::AnswerSetGrammar::parse(kTaskInitial);
    task.space = task_space();
    auto ctx = [](int m) { return asp::parse_program("maxloa(" + std::to_string(m) + ")."); };
    for (const auto& [name, req] :
         std::vector<std::pair<std::string, int>>{{"patrol", 2}, {"strike", 4}, {"observe", 1}}) {
        auto& bucket = req <= boundary ? task.positive : task.negative;
        bucket.emplace_back(tokenize("do " + name), ctx(boundary));
    }
    return task;
}

TEST(AdaptationCache, ReusesHypothesisAcrossSimilarContexts) {
    framework::AdaptationCache cache(0.0);
    // First context: learn.
    auto first = cache.adapt(loa_task(2), asp::parse_program("maxloa(2). weather(clear)."));
    EXPECT_FALSE(first.reused);
    ASSERT_TRUE(first.result.found);
    EXPECT_EQ(cache.learn_calls(), 1u);

    // Different boundary, same LOA rule: the cached hypothesis still
    // separates the examples, so no search happens.
    auto second = cache.adapt(loa_task(3), asp::parse_program("maxloa(3). weather(clear)."));
    EXPECT_TRUE(second.reused);
    EXPECT_EQ(cache.learn_calls(), 1u);
    EXPECT_EQ(cache.reuse_hits(), 1u);
    EXPECT_EQ(second.hypothesis.size(), first.hypothesis.size());
}

TEST(AdaptationCache, FallsBackToLearningWhenCacheInconsistent) {
    framework::AdaptationCache cache(0.0);
    auto first = cache.adapt(loa_task(2), asp::parse_program("maxloa(2)."));
    ASSERT_TRUE(first.result.found);
    // A task the LOA rule cannot express: forbid observe but allow strike.
    ilp::LearningTask odd;
    odd.initial = asg::AnswerSetGrammar::parse(kTaskInitial);
    odd.space = task_space();
    odd.positive.emplace_back(tokenize("do strike"), asp::parse_program("maxloa(9)."));
    odd.negative.emplace_back(tokenize("do observe"), asp::parse_program("maxloa(9)."));
    auto second = cache.adapt(odd, asp::parse_program("maxloa(9)."));
    EXPECT_FALSE(second.reused);
    EXPECT_EQ(cache.learn_calls(), 2u);
}

TEST(AdaptationCache, MinSimilarityGatesReuse) {
    framework::AdaptationCache cache(0.99);  // effectively exact-match only
    auto first = cache.adapt(loa_task(2), asp::parse_program("maxloa(2)."));
    ASSERT_TRUE(first.result.found);
    auto second = cache.adapt(loa_task(3), asp::parse_program("maxloa(3)."));
    EXPECT_FALSE(second.reused);  // similarity below the gate
    EXPECT_EQ(cache.learn_calls(), 2u);
}

TEST(HypothesisConsistent, ChecksDefinitionThreeConditions) {
    auto task = loa_task(2);
    ilp::Hypothesis good = {{asp::parse_rule(":- requires(L)@2, maxloa(M), L > M."), 0}};
    ilp::Hypothesis empty;
    EXPECT_TRUE(framework::hypothesis_consistent(task, good));
    EXPECT_FALSE(framework::hypothesis_consistent(task, empty));  // negatives accepted
}

// ---------------------------------------------------------------------------
// GPM-level quality (PCP)
// ---------------------------------------------------------------------------

TEST(GpmQuality, DetectsRedundantHypothesisRule) {
    auto initial = asg::AnswerSetGrammar::parse(kTaskInitial);
    ilp::Hypothesis h = {
        {asp::parse_rule(":- requires(L)@2, maxloa(M), L > M."), 0},
        {asp::parse_rule(":- requires(L)@2, maxloa(M), L > M + 1."), 0},  // subsumed
    };
    std::vector<asp::Program> contexts = {asp::parse_program("maxloa(1)."),
                                          asp::parse_program("maxloa(3).")};
    auto report = framework::PolicyCheckingPoint::assess_gpm(initial, h, contexts);
    EXPECT_FALSE(report.minimal());
    EXPECT_EQ(report.redundant_rules, (std::vector<std::size_t>{1}));
}

TEST(GpmQuality, MinimalHypothesisPasses) {
    auto initial = asg::AnswerSetGrammar::parse(kTaskInitial);
    ilp::Hypothesis h = {{asp::parse_rule(":- requires(L)@2, maxloa(M), L > M."), 0}};
    // maxloa(5) keeps the strike production alive; without it the
    // production would be correctly flagged dead (see next test).
    std::vector<asp::Program> contexts = {asp::parse_program("maxloa(1)."),
                                          asp::parse_program("maxloa(5).")};
    auto report = framework::PolicyCheckingPoint::assess_gpm(initial, h, contexts);
    EXPECT_TRUE(report.minimal());
    EXPECT_TRUE(report.relevant());
    EXPECT_GT(report.language_size, 0u);
}

TEST(GpmQuality, DeadProductionsAreFlagged) {
    auto initial = asg::AnswerSetGrammar::parse(kTaskInitial);
    // Constraint that kills strike in every supplied context.
    ilp::Hypothesis h = {{asp::parse_rule(":- requires(L)@2, L > 3."), 0}};
    std::vector<asp::Program> contexts = {asp::parse_program("maxloa(5).")};
    auto report = framework::PolicyCheckingPoint::assess_gpm(initial, h, contexts);
    // Production 2 is "task -> strike": never used by an accepted string.
    EXPECT_EQ(report.dead_productions, (std::vector<int>{2}));
}

// ---------------------------------------------------------------------------
// Controlled-NL translation
// ---------------------------------------------------------------------------

nl::Vocabulary healthcare_vocabulary() {
    return nl::vocabulary_from_schema(xacml::healthcare_schema());
}

TEST(NlTranslate, CategoricalEqualityClause) {
    auto intent = nl::translate_statement(healthcare_vocabulary(),
                                          "deny when role is guest and resource is record");
    EXPECT_EQ(intent.rule.to_string(), ":- role(guest)@1, resource(record)@4.");
    EXPECT_EQ(intent.production, 0);
}

TEST(NlTranslate, NumericComparisons) {
    auto v = healthcare_vocabulary();
    EXPECT_EQ(nl::translate_statement(v, "deny when hour below 2").rule.to_string(),
              ":- hour(N1)@5, N1 < 2.");
    EXPECT_EQ(nl::translate_statement(v, "deny when hour above 4").rule.to_string(),
              ":- hour(N1)@5, N1 > 4.");
    EXPECT_EQ(nl::translate_statement(v, "deny when hour at most 1").rule.to_string(),
              ":- hour(N1)@5, N1 <= 1.");
    EXPECT_EQ(nl::translate_statement(v, "deny when hour at least 5").rule.to_string(),
              ":- hour(N1)@5, N1 >= 5.");
}

TEST(NlTranslate, NegatedClause) {
    auto intent = nl::translate_statement(healthcare_vocabulary(),
                                          "deny when role is not doctor and action is delete");
    EXPECT_EQ(intent.rule.to_string(), ":- not role(doctor)@1, action(delete)@3.");
}

TEST(NlTranslate, ForbidSynonym) {
    auto intent = nl::translate_statement(healthcare_vocabulary(), "forbid action is delete");
    EXPECT_EQ(intent.rule.to_string(), ":- action(delete)@3.");
}

TEST(NlTranslate, RejectsUnknownWords) {
    auto v = healthcare_vocabulary();
    EXPECT_THROW(nl::translate_statement(v, "deny when rank is guest"), nl::TranslationError);
    EXPECT_THROW(nl::translate_statement(v, "allow when role is guest"), nl::TranslationError);
    EXPECT_THROW(nl::translate_statement(v, "deny when hour beyond 3"), nl::TranslationError);
    EXPECT_THROW(nl::translate_statement(v, "deny when hour below"), nl::TranslationError);
    EXPECT_THROW(nl::translate_statement(v, "deny when hour below many"), nl::TranslationError);
    EXPECT_THROW(nl::translate_statement(v, "deny when"), nl::TranslationError);
}

TEST(NlTranslate, ContextAttributesCompileUnannotated) {
    // A hand-built vocabulary mixing parse-tree attributes with a
    // context-level one ("trust" has no child annotation).
    nl::Vocabulary v;
    v.attributes.push_back({"kind", asp::Symbol("kind"), 2, false});
    v.attributes.push_back({"trust", asp::Symbol("trust"), asp::kUnannotated, true});
    auto intent = nl::translate_statement(v, "deny when kind is audio and trust below 2");
    EXPECT_EQ(intent.rule.to_string(), ":- kind(audio)@2, trust(N1), N1 < 2.");
}

TEST(NlTranslate, PolicyTextCompilesAndEnforces) {
    auto schema = xacml::healthcare_schema();
    auto bridge = xacml::make_bridge(schema);
    auto v = nl::vocabulary_from_schema(schema);
    auto hypothesis = nl::translate_policy(v, R"(
        # authored by an operator, not learned
        deny when role is guest and resource is record
        deny when action is delete and hour below 2
    )");
    ASSERT_EQ(hypothesis.size(), 2u);
    auto model = bridge.grammar.with_rules(hypothesis);

    auto request = [&](std::vector<std::string> cats, std::int64_t hour) {
        xacml::Request r;
        std::size_t ci = 0;
        for (const auto& def : schema.attributes) {
            r.values.push_back(def.numeric ? xacml::AttributeValue::of(hour)
                                           : xacml::AttributeValue::of(cats[ci++]));
        }
        return xacml::request_tokens(schema, r);
    };
    EXPECT_FALSE(asg::in_language(model, request({"guest", "er", "read", "record"}, 3), {}));
    EXPECT_TRUE(asg::in_language(model, request({"guest", "er", "read", "report"}, 3), {}));
    EXPECT_FALSE(asg::in_language(model, request({"doctor", "er", "delete", "report"}, 1), {}));
    EXPECT_TRUE(asg::in_language(model, request({"doctor", "er", "delete", "report"}, 2), {}));
}

TEST(NlTranslate, RoundTripWithLearnedPolicy) {
    // An authored policy and a policy learned from its own decisions agree.
    auto schema = xacml::healthcare_schema();
    auto bridge = xacml::make_bridge(schema);
    auto v = nl::vocabulary_from_schema(schema);
    auto authored = nl::translate_policy(v, "deny when role is guest and action is write");
    auto authored_model = bridge.grammar.with_rules(authored);

    // Log the authored model's decisions, learn from them.
    util::Rng rng(99);
    std::vector<xacml::LogEntry> log;
    for (const auto& r : xacml::sample_requests(schema, 300, rng)) {
        bool permitted = asg::in_language(authored_model, xacml::request_tokens(schema, r), {});
        log.push_back({r, permitted ? xacml::Decision::Permit : xacml::Decision::Deny});
    }
    auto result = xacml::learn_policy(bridge, log);
    ASSERT_TRUE(result.found) << result.failure_reason;
    auto learned_model = bridge.grammar.with_rules(result.hypothesis);
    for (const auto& r : xacml::enumerate_requests(schema)) {
        auto tokens = xacml::request_tokens(schema, r);
        EXPECT_EQ(asg::in_language(learned_model, tokens, {}),
                  asg::in_language(authored_model, tokens, {}));
    }
}

}  // namespace
}  // namespace agenp
