// docs/PROTOCOL.md conformance: every example exchange in the protocol
// document is replayed verbatim against a live `agenp serve --listen`
// server (real cmd_serve, real TCP socket). If the shipped behavior
// drifts from the spec, this test fails — and names the drifting line.
//
// Transcript conventions (defined in the document itself):
//   C:  a line the client sends
//   S:  the server's reply, compared structurally; the fields the
//       document declares volatile (latency_us, trace_id) need only be
//       present, every other field must match exactly
//   S~  asserts only a prefix of the raw reply line
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli/commands.hpp"
#include "srv/transport.hpp"
#include "srv/wire.hpp"

namespace agenp::cli {
namespace {

std::string temp_file(const std::string& name, const std::string& content) {
    std::string path = std::string(::testing::TempDir()) + name;
    std::ofstream out(path);
    out << content;
    return path;
}

std::string read_whole_file(const std::string& path) {
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

// One step of a transcript: a client send, an exact reply, or a prefix
// assertion, tagged with the PROTOCOL.md line it came from.
struct Step {
    enum class Kind { Send, Expect, ExpectPrefix };
    Kind kind;
    std::string text;
    std::size_t doc_line;
};

// Pulls every fenced block with the given language tag out of the
// markdown, in document order.
std::vector<std::string> fenced_blocks(const std::string& doc, const std::string& lang) {
    std::vector<std::string> blocks;
    std::istringstream in(doc);
    std::string line;
    bool inside = false;
    std::string current;
    while (std::getline(in, line)) {
        if (!inside && line == "```" + lang) {
            inside = true;
            current.clear();
        } else if (inside && line == "```") {
            inside = false;
            blocks.push_back(current);
        } else if (inside) {
            current += line;
            current += '\n';
        }
    }
    return blocks;
}

// Parses every ```jsonl transcript into one flat step list (the examples
// share a single server and a single connection, in document order).
std::vector<Step> transcript_steps(const std::string& doc) {
    std::vector<Step> steps;
    std::istringstream in(doc);
    std::string line;
    std::size_t doc_line = 0;
    bool inside = false;
    while (std::getline(in, line)) {
        ++doc_line;
        if (!inside && line == "```jsonl") {
            inside = true;
        } else if (inside && line == "```") {
            inside = false;
        } else if (inside) {
            if (line.rfind("C: ", 0) == 0) {
                steps.push_back({Step::Kind::Send, line.substr(3), doc_line});
            } else if (line.rfind("S: ", 0) == 0) {
                steps.push_back({Step::Kind::Expect, line.substr(3), doc_line});
            } else if (line.rfind("S~ ", 0) == 0) {
                steps.push_back({Step::Kind::ExpectPrefix, line.substr(3), doc_line});
            } else {
                ADD_FAILURE() << "PROTOCOL.md line " << doc_line
                              << ": transcript line without C:/S:/S~ marker: " << line;
            }
        }
    }
    return steps;
}

// The document declares these reply fields volatile: present, value ignored.
bool is_volatile_key(const std::string& key) {
    return key == "latency_us" || key == "trace_id";
}

bool json_equal(const srv::JsonValue& a, const srv::JsonValue& b);

bool json_equal(const srv::JsonValue& a, const srv::JsonValue& b) {
    if (a.type != b.type) return false;
    switch (a.type) {
        case srv::JsonValue::Type::Null: return true;
        case srv::JsonValue::Type::Bool: return a.boolean == b.boolean;
        case srv::JsonValue::Type::Number: return a.number == b.number;
        case srv::JsonValue::Type::String: return a.string == b.string;
        case srv::JsonValue::Type::Array: {
            if (a.array.size() != b.array.size()) return false;
            for (std::size_t i = 0; i < a.array.size(); ++i) {
                if (!json_equal(a.array[i], b.array[i])) return false;
            }
            return true;
        }
        case srv::JsonValue::Type::Object: {
            if (a.object.size() != b.object.size()) return false;
            for (const auto& [key, value] : a.object) {
                const srv::JsonValue* other = b.find(key);
                if (other == nullptr || !json_equal(value, *other)) return false;
            }
            return true;
        }
    }
    return false;
}

// Structural reply comparison: identical key sets, identical values,
// except that volatile keys only need to exist on the actual reply.
void expect_reply_matches(const std::string& expected_text, const std::string& actual_text,
                          std::size_t doc_line) {
    auto expected = srv::parse_json(expected_text);
    ASSERT_TRUE(expected.has_value())
        << "PROTOCOL.md line " << doc_line << " is not valid JSON: " << expected_text;
    auto actual = srv::parse_json(actual_text);
    ASSERT_TRUE(actual.has_value())
        << "server reply for PROTOCOL.md line " << doc_line << " is not valid JSON: "
        << actual_text;
    ASSERT_TRUE(expected->is_object() && actual->is_object())
        << "PROTOCOL.md line " << doc_line << ": both sides must be objects";

    std::set<std::string> expected_keys;
    for (const auto& [key, value] : expected->object) expected_keys.insert(key);
    std::set<std::string> actual_keys;
    for (const auto& [key, value] : actual->object) actual_keys.insert(key);
    EXPECT_EQ(expected_keys, actual_keys)
        << "PROTOCOL.md line " << doc_line << "\n  spec:   " << expected_text
        << "\n  server: " << actual_text;

    for (const auto& [key, value] : expected->object) {
        const srv::JsonValue* got = actual->find(key);
        ASSERT_NE(got, nullptr) << "PROTOCOL.md line " << doc_line << ": reply lacks field '"
                                << key << "'\n  server: " << actual_text;
        if (is_volatile_key(key)) continue;  // presence is the contract
        EXPECT_TRUE(json_equal(value, *got))
            << "PROTOCOL.md line " << doc_line << ": field '" << key << "' differs"
            << "\n  spec:   " << expected_text << "\n  server: " << actual_text;
    }
}

TEST(Protocol, ShippedExamplesRoundTripAgainstLiveServer) {
    const std::string doc = read_whole_file(std::string(AGENP_SOURCE_DIR) + "/docs/PROTOCOL.md");

    // The example session declares its grammar and context in the first
    // ```asg / ```lp blocks; the server is launched with exactly those.
    auto grammars = fenced_blocks(doc, "asg");
    auto contexts = fenced_blocks(doc, "lp");
    ASSERT_FALSE(grammars.empty()) << "PROTOCOL.md lost its ```asg example grammar";
    ASSERT_FALSE(contexts.empty()) << "PROTOCOL.md lost its ```lp example context";
    auto steps = transcript_steps(doc);
    ASSERT_FALSE(steps.empty()) << "PROTOCOL.md lost its ```jsonl transcripts";

    ServeCliOptions options;
    options.grammar_path = temp_file("protocol_grammar.asg", grammars.front());
    options.context_path = temp_file("protocol_context.lp", contexts.front());
    options.threads = 2;
    options.replicas = 1;  // the document pins "replicas":1 in ping replies
    // The `!snapshot` example needs somewhere to persist to.
    options.state_dir = std::string(::testing::TempDir()) + "protocol_state";
    options.listen = true;
    options.listen_port = 0;
    int shutdown_pipe[2];
    ASSERT_EQ(::pipe(shutdown_pipe), 0);
    options.shutdown_fd = shutdown_pipe[0];
    std::atomic<std::uint16_t> port{0};
    options.announce_port = &port;

    std::istringstream unused_in;
    std::ostringstream serve_out;
    int exit_code = -1;
    std::thread server([&] { exit_code = cmd_serve(options, unused_in, serve_out); });
    while (port.load() == 0) std::this_thread::sleep_for(std::chrono::milliseconds{1});

    {
        srv::TcpClient client("127.0.0.1", port.load());
        for (const auto& step : steps) {
            switch (step.kind) {
                case Step::Kind::Send: client.send_line(step.text); break;
                case Step::Kind::Expect: {
                    auto reply = client.recv_line();
                    ASSERT_TRUE(reply.has_value())
                        << "no reply for PROTOCOL.md line " << step.doc_line;
                    expect_reply_matches(step.text, *reply, step.doc_line);
                    break;
                }
                case Step::Kind::ExpectPrefix: {
                    auto reply = client.recv_line();
                    ASSERT_TRUE(reply.has_value())
                        << "no reply for PROTOCOL.md line " << step.doc_line;
                    EXPECT_EQ(reply->rfind(step.text, 0), 0u)
                        << "PROTOCOL.md line " << step.doc_line << ": expected prefix '"
                        << step.text << "', got: " << *reply;
                    break;
                }
            }
        }
    }

    // One byte on the shutdown descriptor triggers the graceful drain.
    ASSERT_EQ(::write(shutdown_pipe[1], "x", 1), 1);
    server.join();
    ::close(shutdown_pipe[0]);
    ::close(shutdown_pipe[1]);
    EXPECT_EQ(exit_code, 0) << serve_out.str();
    EXPECT_NE(serve_out.str().find("AGENP_LISTENING port="), std::string::npos);
    EXPECT_NE(serve_out.str().find("SERVE_STATS_JSON "), std::string::npos);
    std::remove((options.state_dir + "/snapshot.agenp").c_str());
    std::remove((options.state_dir + "/wal.agenp").c_str());
    ::rmdir(options.state_dir.c_str());
}

// The catalogue at the bottom of the document must stay in lockstep with
// the parser: every listed message must be producible, and the parser
// must not produce messages the catalogue misses (spot-checked via the
// transcript above; here we pin the full list against parse_wire_request).
TEST(Protocol, BadRequestCatalogueMatchesParser) {
    const std::pair<const char*, const char*> cases[] = {
        {"[1,2,3]", "line is not a JSON object"},
        {R"({"id":"seven","decide":"do patrol"})", "field 'id' must be a non-negative integer"},
        {R"({"decide":"do patrol","op":"ping"})", "request cannot carry both 'decide' and 'op'"},
        {R"({"decide":42})", "field 'decide' must be a string"},
        {R"({"decide":""})", "field 'decide' must not be empty"},
        {R"({"op":"reboot"})", "unknown op (supported: ping)"},
        {"{}", "request needs a 'decide' or 'op' field"},
        {R"({"decide":"x","timeout_ms":-1})", "field 'timeout_ms' must be a non-negative integer"},
    };
    const std::string doc = read_whole_file(std::string(AGENP_SOURCE_DIR) + "/docs/PROTOCOL.md");
    for (const auto& [line, message] : cases) {
        std::string error;
        EXPECT_FALSE(srv::parse_wire_request(line, &error).has_value()) << line;
        EXPECT_EQ(error, message) << line;
        EXPECT_NE(doc.find(std::string("`") + message + "`"), std::string::npos)
            << "catalogue in PROTOCOL.md is missing: " << message;
    }
}

}  // namespace
}  // namespace agenp::cli
