#include <gtest/gtest.h>

#include "ml/decision_tree.hpp"
#include "ml/knn.hpp"
#include "ml/logistic_regression.hpp"
#include "ml/metrics.hpp"
#include "ml/naive_bayes.hpp"
#include "ml/one_vs_rest.hpp"

namespace agenp::ml {
namespace {

// Linearly separable numeric data: label = x0 + x1 > 1.
Dataset linear_dataset(std::size_t n, util::Rng& rng) {
    Dataset d({FeatureSpec::numeric_feature("x0"), FeatureSpec::numeric_feature("x1")});
    for (std::size_t i = 0; i < n; ++i) {
        double x0 = rng.uniform01() * 2;
        double x1 = rng.uniform01() * 2;
        d.add_row({x0, x1}, x0 + x1 > 1 ? 1 : 0);
    }
    return d;
}

// Mixed rule-structured data resembling the policy scenarios:
// accept iff weather != fog AND loa >= 3.
Dataset rule_dataset(std::size_t n, util::Rng& rng) {
    Dataset d({FeatureSpec::categorical("weather", {"sunny", "rain", "fog"}),
               FeatureSpec::numeric_feature("loa")});
    for (std::size_t i = 0; i < n; ++i) {
        double w = static_cast<double>(rng.uniform(0, 2));
        double loa = static_cast<double>(rng.uniform(0, 5));
        int label = (w != 2 && loa >= 3) ? 1 : 0;
        d.add_row({w, loa}, label);
    }
    return d;
}

TEST(Dataset, AddRowValidatesArity) {
    Dataset d({FeatureSpec::numeric_feature("x")});
    EXPECT_THROW(d.add_row({1.0, 2.0}, 0), std::invalid_argument);
    d.add_row({1.0}, 1);
    EXPECT_EQ(d.size(), 1u);
}

TEST(Dataset, SplitPartitionsRows) {
    util::Rng rng(1);
    auto d = linear_dataset(100, rng);
    auto [train, test] = d.split(0.7, rng);
    EXPECT_EQ(train.size(), 70u);
    EXPECT_EQ(test.size(), 30u);
}

TEST(Dataset, HeadTakesPrefix) {
    util::Rng rng(1);
    auto d = linear_dataset(10, rng);
    auto h = d.head(3);
    EXPECT_EQ(h.size(), 3u);
    EXPECT_EQ(h.row(0), d.row(0));
    EXPECT_EQ(d.head(99).size(), 10u);
}

TEST(Confusion, MetricsFromCounts) {
    Confusion c{.tp = 8, .tn = 6, .fp = 2, .fn = 4};
    EXPECT_DOUBLE_EQ(c.accuracy(), 0.7);
    EXPECT_DOUBLE_EQ(c.precision(), 0.8);
    EXPECT_NEAR(c.recall(), 8.0 / 12.0, 1e-12);
    EXPECT_GT(c.f1(), 0.7);
}

TEST(Confusion, EmptyIsZero) {
    Confusion c;
    EXPECT_EQ(c.accuracy(), 0);
    EXPECT_EQ(c.f1(), 0);
}

template <typename Model>
double accuracy_on(Model&& model, const Dataset& train, const Dataset& test) {
    model.fit(train);
    return evaluate(model, test).accuracy();
}

TEST(DecisionTree, LearnsLinearBoundaryApproximately) {
    util::Rng rng(2);
    auto train = linear_dataset(400, rng);
    auto test = linear_dataset(200, rng);
    EXPECT_GT(accuracy_on(DecisionTree{}, train, test), 0.85);
}

TEST(DecisionTree, LearnsRuleStructuredDataWell) {
    util::Rng rng(3);
    auto train = rule_dataset(400, rng);
    auto test = rule_dataset(200, rng);
    EXPECT_GT(accuracy_on(DecisionTree{}, train, test), 0.95);
}

TEST(DecisionTree, PureLeafStopsSplitting) {
    Dataset d({FeatureSpec::numeric_feature("x")});
    for (int i = 0; i < 10; ++i) d.add_row({static_cast<double>(i)}, 1);
    DecisionTree t;
    t.fit(d);
    EXPECT_EQ(t.node_count(), 1);
    EXPECT_EQ(t.predict({42.0}), 1);
}

TEST(DecisionTree, RespectsMaxDepth) {
    util::Rng rng(4);
    auto train = rule_dataset(300, rng);
    DecisionTree shallow({.max_depth = 1});
    shallow.fit(train);
    EXPECT_LE(shallow.depth(), 2);
}

TEST(DecisionTree, EmptyTrainingPredictsZero) {
    Dataset d({FeatureSpec::numeric_feature("x")});
    DecisionTree t;
    t.fit(d);
    EXPECT_EQ(t.predict({1.0}), 0);
}

TEST(LogisticRegression, LearnsLinearBoundaryWell) {
    util::Rng rng(5);
    auto train = linear_dataset(400, rng);
    auto test = linear_dataset(200, rng);
    EXPECT_GT(accuracy_on(LogisticRegression{}, train, test), 0.93);
}

TEST(LogisticRegression, ProbabilitiesAreCalibratedDirectionally) {
    util::Rng rng(6);
    auto train = linear_dataset(400, rng);
    LogisticRegression m;
    m.fit(train);
    EXPECT_GT(m.predict_proba({2.0, 2.0}), 0.9);
    EXPECT_LT(m.predict_proba({0.0, 0.0}), 0.1);
}

TEST(LogisticRegression, HandlesCategoricalOneHot) {
    util::Rng rng(7);
    auto train = rule_dataset(400, rng);
    auto test = rule_dataset(200, rng);
    EXPECT_GT(accuracy_on(LogisticRegression{}, train, test), 0.8);
}

TEST(NaiveBayes, LearnsCategoricalStructure) {
    util::Rng rng(8);
    auto train = rule_dataset(400, rng);
    auto test = rule_dataset(200, rng);
    EXPECT_GT(accuracy_on(NaiveBayes{}, train, test), 0.75);
}

TEST(NaiveBayes, GaussianNumericSeparation) {
    util::Rng rng(9);
    auto train = linear_dataset(400, rng);
    auto test = linear_dataset(200, rng);
    EXPECT_GT(accuracy_on(NaiveBayes{}, train, test), 0.85);
}

TEST(NaiveBayes, EmptyTrainingIsDeterministic) {
    Dataset d({FeatureSpec::numeric_feature("x")});
    NaiveBayes m;
    m.fit(d);
    EXPECT_EQ(m.predict({1.0}), m.predict({1.0}));
}

TEST(Knn, LearnsLinearBoundary) {
    util::Rng rng(10);
    auto train = linear_dataset(400, rng);
    auto test = linear_dataset(200, rng);
    EXPECT_GT(accuracy_on(Knn{}, train, test), 0.9);
}

TEST(Knn, MixedMetricHandlesCategoricals) {
    util::Rng rng(11);
    auto train = rule_dataset(400, rng);
    auto test = rule_dataset(200, rng);
    EXPECT_GT(accuracy_on(Knn{}, train, test), 0.85);
}

TEST(Knn, KOneMemorizesTrainingSet) {
    util::Rng rng(12);
    auto train = rule_dataset(100, rng);
    Knn m({.k = 1});
    m.fit(train);
    auto c = evaluate(m, train);
    EXPECT_EQ(c.accuracy(), 1.0);
}

TEST(OneVsRest, SeparatesThreeGaussianClasses) {
    util::Rng rng(14);
    Dataset d({FeatureSpec::numeric_feature("x"), FeatureSpec::numeric_feature("y")});
    auto emit = [&](double cx, double cy, int label) {
        for (int i = 0; i < 120; ++i) {
            d.add_row({cx + rng.uniform01() * 2 - 1, cy + rng.uniform01() * 2 - 1}, label);
        }
    };
    emit(0, 0, 0);
    emit(6, 0, 1);
    emit(0, 6, 2);
    OneVsRest m(3);
    m.fit(d);
    EXPECT_EQ(m.predict({0, 0}), 0);
    EXPECT_EQ(m.predict({6, 0}), 1);
    EXPECT_EQ(m.predict({0, 6}), 2);
}

TEST(OneVsRest, ScoresSumToReasonableRange) {
    util::Rng rng(15);
    Dataset d({FeatureSpec::numeric_feature("x")});
    for (int i = 0; i < 60; ++i) d.add_row({static_cast<double>(i % 3) * 5}, i % 3);
    OneVsRest m(3);
    m.fit(d);
    auto s = m.scores({0});
    ASSERT_EQ(s.size(), 3u);
    for (double v : s) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
    }
}

TEST(OneVsRest, EmptyModelPredictsZero) {
    OneVsRest m(3);
    EXPECT_EQ(m.predict({1.0}), 0);
}

// Learning-curve sanity: with rule-structured data, the decision tree
// improves monotonically (within tolerance) as training grows.
class CurveSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CurveSweep, MoreDataDoesNotHurtMuch) {
    util::Rng rng(13);
    auto pool = rule_dataset(600, rng);
    auto test = rule_dataset(300, rng);
    auto small = pool.head(GetParam());
    auto large = pool.head(GetParam() * 4);
    DecisionTree a, b;
    a.fit(small);
    b.fit(large);
    EXPECT_GE(evaluate(b, test).accuracy() + 0.05, evaluate(a, test).accuracy());
}

INSTANTIATE_TEST_SUITE_P(Sweep, CurveSweep, ::testing::Values(10, 25, 50, 100));

}  // namespace
}  // namespace agenp::ml
