// Serving layer: sharded versioned decision cache, concurrent decision
// service, closed-loop load generator (DESIGN.md section 8).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

#include "asp/parser.hpp"
#include "srv/loadgen.hpp"
#include "srv/service.hpp"
#include "util/rng.hpp"

namespace agenp::srv {
namespace {

using namespace std::chrono_literals;

CacheKey key_for(const std::string& request, const std::string& context = "") {
    return DecisionCache::make_key(cfg::tokenize(request), asp::parse_program(context));
}

ServiceOptions service_options(std::size_t threads, std::size_t queue_capacity = 1024,
                               bool use_cache = true) {
    ServiceOptions options;
    options.threads = threads;
    options.queue_capacity = queue_capacity;
    options.use_cache = use_cache;
    return options;
}

TEST(DecisionCache, KeySeparatesRequestAndContext) {
    auto a = key_for("do patrol", "maxloa(3).");
    auto b = key_for("do patrol", "maxloa(4).");
    auto c = key_for("do strike", "maxloa(3).");
    std::set<std::string> texts = {a.text, b.text, c.text};
    EXPECT_EQ(texts.size(), 3u);
    // Same inputs -> same key.
    EXPECT_EQ(a.text, key_for("do patrol", "maxloa(3).").text);
    EXPECT_EQ(a.hash, key_for("do patrol", "maxloa(3).").hash);
}

TEST(DecisionCache, MissInsertHit) {
    DecisionCache cache;
    auto key = key_for("do patrol");
    EXPECT_FALSE(cache.lookup(key, 1).has_value());
    cache.insert(key, 1, true);
    auto hit = cache.lookup(key, 1);
    ASSERT_TRUE(hit.has_value());
    EXPECT_TRUE(*hit);
    auto stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.insertions, 1u);
    EXPECT_EQ(stats.entries, 1u);
}

TEST(DecisionCache, VersionBumpInvalidatesWithoutFlush) {
    DecisionCache cache;
    auto stale = key_for("do patrol");
    auto fresh = key_for("do observe");
    cache.insert(stale, 1, true);
    cache.insert(fresh, 2, false);
    // Model moved to v2: v1 entry misses and is lazily evicted; the v2
    // entry is untouched (no global flush).
    EXPECT_FALSE(cache.lookup(stale, 2).has_value());
    EXPECT_TRUE(cache.lookup(fresh, 2).has_value());
    auto stats = cache.stats();
    EXPECT_EQ(stats.invalidations, 1u);
    EXPECT_EQ(stats.entries, 1u);
}

TEST(DecisionCache, LruEvictsOldestAtCapacity) {
    CacheOptions options;
    options.shards = 1;  // deterministic LRU order
    options.capacity_bytes = 400;
    DecisionCache cache(options);
    // Each entry costs ~64 + key bytes, so ~5 entries fit.
    for (int i = 0; i < 32; ++i) {
        cache.insert(key_for("req " + std::to_string(i)), 1, true);
    }
    auto stats = cache.stats();
    EXPECT_GT(stats.evictions, 0u);
    EXPECT_LT(stats.entries, 32u);
    EXPECT_LE(stats.bytes, 400u);
    // The newest entry survived; the oldest was evicted.
    EXPECT_TRUE(cache.lookup(key_for("req 31"), 1).has_value());
    EXPECT_FALSE(cache.lookup(key_for("req 0"), 1).has_value());
}

TEST(DecisionCache, TouchedEntrySurvivesEviction) {
    CacheOptions options;
    options.shards = 1;
    options.capacity_bytes = 400;
    DecisionCache cache(options);
    cache.insert(key_for("hot"), 1, true);
    for (int i = 0; i < 16; ++i) {
        ASSERT_TRUE(cache.lookup(key_for("hot"), 1).has_value()) << "evicted after " << i;
        cache.insert(key_for("filler " + std::to_string(i)), 1, false);
    }
}

TEST(DecisionCache, ConcurrentHammering) {
    DecisionCache cache(CacheOptions{.capacity_bytes = 1 << 16, .shards = 8});
    constexpr int kThreads = 8;
    constexpr int kOpsPerThread = 4000;
    std::atomic<std::uint64_t> observed_hits{0}, observed_misses{0}, wrong{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            util::Rng rng(static_cast<std::uint64_t>(t) + 1);
            for (int i = 0; i < kOpsPerThread; ++i) {
                int id = static_cast<int>(rng.uniform(0, 63));
                bool expected = id % 2 == 0;
                auto key = key_for("req " + std::to_string(id));
                if (auto hit = cache.lookup(key, 1)) {
                    observed_hits.fetch_add(1);
                    if (*hit != expected) wrong.fetch_add(1);
                } else {
                    observed_misses.fetch_add(1);
                    cache.insert(key, 1, expected);
                }
            }
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(wrong.load(), 0u);
    EXPECT_EQ(observed_hits.load() + observed_misses.load(),
              static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
    auto stats = cache.stats();
    EXPECT_EQ(stats.hits, observed_hits.load());
    EXPECT_EQ(stats.misses, observed_misses.load());
    EXPECT_LE(stats.entries, 64u);
}

// --- service fixtures ---

// Permits "do task_i" iff i % 5 + 1 <= 3 under the demo maxloa(3) context.
bool demo_expected(std::size_t task) { return task % 5 + 1 <= 3; }

TEST(DecisionService, DecidesCorrectlyAndCaches) {
    auto ams = make_demo_ams(6, /*context_weight=*/0);
    DecisionService service(ams, service_options(2));
    for (int round = 0; round < 2; ++round) {
        for (std::size_t i = 0; i < 6; ++i) {
            Decision d = service.submit(cfg::tokenize("do task_" + std::to_string(i))).get();
            EXPECT_EQ(d.permitted(), demo_expected(i)) << "task_" << i;
            EXPECT_EQ(d.cache_hit, round == 1) << "task_" << i;
            EXPECT_NE(d.monitor_index, Decision::kNoIndex);
        }
    }
    auto stats = service.snapshot_stats();
    EXPECT_EQ(stats.completed, 12u);
    EXPECT_EQ(stats.cache.hits, 6u);
    EXPECT_EQ(stats.cache.misses, 6u);
    EXPECT_EQ(ams.monitor().history().size(), 12u);
}

TEST(DecisionService, SubmitBatchAndDrain) {
    auto ams = make_demo_ams(4, /*context_weight=*/0);
    DecisionService service(ams, service_options(4));
    std::vector<cfg::TokenString> requests;
    for (int i = 0; i < 40; ++i) {
        requests.push_back(cfg::tokenize("do task_" + std::to_string(i % 4)));
    }
    auto futures = service.submit_batch(std::move(requests));
    service.drain();
    auto stats = service.snapshot_stats();
    EXPECT_EQ(stats.queue_depth, 0u);
    EXPECT_EQ(stats.completed + stats.rejected_overload + stats.expired, 40u);
    for (auto& f : futures) {
        EXPECT_TRUE(f.wait_for(0s) == std::future_status::ready);
        (void)f.get();
    }
}

TEST(DecisionService, BackpressureRejectsWhenQueueFull) {
    auto ams = make_demo_ams(2, /*context_weight=*/0);
    // One slow worker + a 2-deep queue: flooding must shed load.
    ams.pep().set_effector([](const cfg::TokenString&, bool) { std::this_thread::sleep_for(2ms); });
    DecisionService service(ams, service_options(1, /*queue_capacity=*/2));
    std::vector<std::future<Decision>> futures;
    for (int i = 0; i < 64; ++i) futures.push_back(service.submit(cfg::tokenize("do task_0")));
    std::size_t overloaded = 0, decided = 0;
    for (auto& f : futures) {
        Decision d = f.get();
        if (d.outcome == Outcome::Overloaded) {
            ++overloaded;
            EXPECT_EQ(d.monitor_index, Decision::kNoIndex);
        } else {
            ++decided;
        }
    }
    EXPECT_GT(overloaded, 0u);
    EXPECT_GT(decided, 0u);
    auto stats = service.snapshot_stats();
    EXPECT_EQ(stats.rejected_overload, overloaded);
    EXPECT_EQ(stats.completed, decided);
}

TEST(DecisionService, DeadlineExpiresWhileQueued) {
    auto ams = make_demo_ams(2, /*context_weight=*/0);
    ams.pep().set_effector([](const cfg::TokenString&, bool) { std::this_thread::sleep_for(20ms); });
    DecisionService service(ams, service_options(1));
    // First request occupies the worker for 20ms; the second's 1ms deadline
    // lapses in the queue.
    auto blocker = service.submit(cfg::tokenize("do task_0"));
    auto doomed = service.submit(cfg::tokenize("do task_1"), 1ms);
    EXPECT_NE(blocker.get().outcome, Outcome::Expired);
    Decision d = doomed.get();
    EXPECT_EQ(d.outcome, Outcome::Expired);
    EXPECT_EQ(d.monitor_index, Decision::kNoIndex);
    EXPECT_EQ(service.snapshot_stats().expired, 1u);
}

TEST(DecisionService, ModelAdoptionInvalidatesByVersion) {
    auto ams = make_demo_ams(2, /*context_weight=*/0);
    DecisionService service(ams, service_options(2));
    Decision before = service.submit(cfg::tokenize("do task_0")).get();
    EXPECT_TRUE(before.permitted());
    EXPECT_TRUE(service.submit(cfg::tokenize("do task_0")).get().cache_hit);

    // Adopt a stricter model (everything requires clearance 5) with the
    // service running; version stamping must retire the old entries.
    service.update_model([&] {
        std::string text = "request -> \"do\" task { :- requires(L)@2, maxloa(M), L > M. }\n";
        text += "task -> \"task_0\" { requires(5). }\n";
        text += "task -> \"task_1\" { requires(5). }\n";
        ams.representations().store(asg::AnswerSetGrammar::parse(text), "test-adoption");
    });

    Decision after = service.submit(cfg::tokenize("do task_0")).get();
    EXPECT_FALSE(after.cache_hit);  // old entry is stale, not served
    EXPECT_FALSE(after.permitted());
    EXPECT_GT(after.model_version, before.model_version);
    // And the new verdict is itself cached.
    Decision again = service.submit(cfg::tokenize("do task_0")).get();
    EXPECT_TRUE(again.cache_hit);
    EXPECT_FALSE(again.permitted());
    EXPECT_GE(service.cache().stats().invalidations, 1u);
}

TEST(DecisionService, CacheOffEquivalence) {
    // The same randomized request stream must produce identical decisions
    // with the cache enabled and disabled.
    util::Rng rng(7);
    std::vector<cfg::TokenString> stream;
    for (int i = 0; i < 120; ++i) {
        stream.push_back(cfg::tokenize("do task_" + std::to_string(rng.uniform(0, 9))));
    }
    std::vector<bool> with_cache, without_cache;
    for (bool use_cache : {true, false}) {
        auto ams = make_demo_ams(10, /*context_weight=*/0);
        DecisionService service(ams, service_options(4, 1024, use_cache));
        std::vector<std::future<Decision>> futures;
        futures.reserve(stream.size());
        for (const auto& r : stream) futures.push_back(service.submit(r));
        for (auto& f : futures) {
            (use_cache ? with_cache : without_cache).push_back(f.get().permitted());
        }
    }
    EXPECT_EQ(with_cache, without_cache);
}

TEST(DecisionService, ConcurrentSubmittersAgainstOneCache) {
    auto ams = make_demo_ams(8, /*context_weight=*/0);
    DecisionService service(ams, service_options(4, 1 << 14));
    constexpr int kClients = 8;
    constexpr int kPerClient = 150;
    std::atomic<std::uint64_t> wrong{0};
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            util::Rng rng(static_cast<std::uint64_t>(c) + 100);
            for (int i = 0; i < kPerClient; ++i) {
                auto task = static_cast<std::size_t>(rng.uniform(0, 7));
                Decision d =
                    service.submit(cfg::tokenize("do task_" + std::to_string(task))).get();
                if (d.permitted() != demo_expected(task)) wrong.fetch_add(1);
            }
        });
    }
    for (auto& t : clients) t.join();
    EXPECT_EQ(wrong.load(), 0u);
    auto stats = service.snapshot_stats();
    EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(kClients) * kPerClient);
    EXPECT_GT(stats.cache.hits, 0u);
}

TEST(DecisionService, FeedbackFlowsToMonitorAndPAdaP) {
    auto ams = make_demo_ams(4, /*context_weight=*/0);
    DecisionService service(ams, service_options(2));
    Decision d = service.submit(cfg::tokenize("do task_0")).get();
    ASSERT_NE(d.monitor_index, Decision::kNoIndex);
    EXPECT_TRUE(service.give_feedback(d.monitor_index, false));
    EXPECT_FALSE(service.give_feedback(d.monitor_index + 1000, true));
    ASSERT_TRUE(ams.monitor().observed_accuracy().has_value());
    EXPECT_DOUBLE_EQ(*ams.monitor().observed_accuracy(), 0.0);
}

TEST(DecisionService, MonitorHistoryStaysBounded) {
    framework::AmsOptions options;
    options.monitor_capacity = 16;
    framework::AutonomousManagedSystem ams("bounded", demo_grammar(2, 0),
                                           ilp::HypothesisSpace{}, options);
    ams.pip().add_source("env", [] { return asp::parse_program("maxloa(3)."); });
    DecisionService service(ams, service_options(2));
    std::vector<std::future<Decision>> futures;
    for (int i = 0; i < 200; ++i) {
        futures.push_back(service.submit(cfg::tokenize("do task_" + std::to_string(i % 2))));
    }
    for (auto& f : futures) (void)f.get();
    EXPECT_EQ(ams.monitor().history().size(), 16u);
    EXPECT_EQ(ams.monitor().total_recorded(), 200u);
}

TEST(Loadgen, ReportIsConsistentAndJsonWellFormed) {
    auto ams = make_demo_ams(6, /*context_weight=*/0);
    DecisionService service(ams, service_options(2));
    LoadgenOptions options;
    options.clients = 3;
    options.requests_per_client = 40;
    auto report = run_loadgen(service, demo_workload(6), options);
    EXPECT_EQ(report.requests, 120u);
    EXPECT_EQ(report.permitted + report.denied + report.overloaded + report.expired, 120u);
    EXPECT_GT(report.throughput_rps, 0.0);
    EXPECT_GE(report.p99_us, report.p50_us);
    EXPECT_GT(report.hit_rate, 0.0);
    auto json = report.to_json();
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    for (const char* field : {"\"requests\":", "\"throughput_rps\":", "\"p50_us\":",
                              "\"p99_us\":", "\"hit_rate\":"}) {
        EXPECT_NE(json.find(field), std::string::npos) << field;
    }
}

// --- flight recorder ---

TEST(FlightRecorder, WraparoundKeepsNewestWithMonotoneIds) {
    FlightRecorder ring(8);
    EXPECT_EQ(ring.capacity(), 8u);
    for (std::uint64_t i = 1; i <= 20; ++i) {
        FlightRecord r;
        r.id = i;
        r.total_us = i * 10;
        ring.record(r);
    }
    EXPECT_EQ(ring.total_recorded(), 20u);
    auto records = ring.snapshot();
    ASSERT_EQ(records.size(), 8u);
    // The ring retains exactly the newest 8, oldest first.
    for (std::size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(records[i].id, 13 + i);
        EXPECT_EQ(records[i].total_us, (13 + i) * 10);
        if (i > 0) {
            EXPECT_GT(records[i].id, records[i - 1].id);
        }
    }
}

TEST(FlightRecorder, SnapshotNeverMixesFieldsOfTwoRecords) {
    FlightRecorder ring(16);
    constexpr int kThreads = 8;
    constexpr int kOpsPerThread = 2000;
    std::vector<std::thread> writers;
    writers.reserve(kThreads);
    std::atomic<bool> stop{false};
    // Writers emit records whose fields are all derived from one value, so
    // any torn read surfaces as an internally inconsistent record.
    for (int t = 0; t < kThreads; ++t) {
        writers.emplace_back([&, t] {
            for (int i = 0; i < kOpsPerThread; ++i) {
                std::uint64_t v = static_cast<std::uint64_t>(t) * kOpsPerThread + i + 1;
                FlightRecord r;
                r.id = v;
                r.queue_us = v * 2;
                r.solve_us = v * 3;
                r.total_us = v * 5;
                ring.record(r);
            }
        });
    }
    std::size_t snapshots_taken = 0;
    while (!stop.load()) {
        for (const auto& r : ring.snapshot()) {
            EXPECT_EQ(r.queue_us, r.id * 2);
            EXPECT_EQ(r.solve_us, r.id * 3);
            EXPECT_EQ(r.total_us, r.id * 5);
        }
        ++snapshots_taken;
        if (ring.total_recorded() >= static_cast<std::uint64_t>(kThreads) * kOpsPerThread) {
            stop.store(true);
        }
    }
    for (auto& w : writers) w.join();
    EXPECT_GT(snapshots_taken, 0u);
    EXPECT_EQ(ring.total_recorded(), static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
}

TEST(FlightRecorder, JsonLinesRenderOnePerRecord) {
    FlightRecorder ring(4);
    FlightRecord r;
    r.id = 9;
    r.outcome = 1;
    r.cache_hit = true;
    ring.record(r);
    std::string lines = ring.render_json_lines();
    EXPECT_NE(lines.find("\"id\":9"), std::string::npos);
    EXPECT_NE(lines.find("\"cache_hit\":true"), std::string::npos);
}

TEST(DecisionService, FlightRingSeesEveryRequest) {
    auto ams = make_demo_ams(4, /*context_weight=*/0);
    ServiceOptions options = service_options(2);
    options.flight_capacity = 64;
    DecisionService service(ams, options);
    std::vector<std::future<Decision>> futures;
    for (int i = 0; i < 20; ++i) {
        futures.push_back(service.submit(cfg::tokenize("do task_" + std::to_string(i % 4))));
    }
    std::set<std::uint64_t> decision_ids;
    for (auto& f : futures) decision_ids.insert(f.get().trace_id);
    service.drain();
    EXPECT_EQ(service.flight().total_recorded(), 20u);
    std::set<std::uint64_t> recorded_ids;
    for (const auto& r : service.flight().snapshot()) recorded_ids.insert(r.id);
    // Every decision's trace id has a flight record.
    for (auto id : decision_ids) EXPECT_TRUE(recorded_ids.count(id)) << id;
}

// --- tail-based trace capture ---

TEST(DecisionService, SampledCaptureProducesSpanTree) {
    auto ams = make_demo_ams(4, /*context_weight=*/0);
    ServiceOptions options = service_options(2, 1024, /*use_cache=*/false);
    options.trace.sample_every = 1;  // capture everything
    options.trace.max_captured = 64;
    DecisionService service(ams, options);
    std::vector<std::future<Decision>> futures;
    for (int i = 0; i < 8; ++i) {
        futures.push_back(service.submit(cfg::tokenize("do task_" + std::to_string(i % 4))));
    }
    std::set<std::uint64_t> decision_ids;
    for (auto& f : futures) decision_ids.insert(f.get().trace_id);
    service.drain();

    auto captured = service.captured_traces();
    ASSERT_EQ(captured.size(), 8u);
    for (const auto& c : captured) {
        EXPECT_EQ(c.reason, "sample");
        EXPECT_TRUE(decision_ids.count(c.trace_id())) << c.trace_id();
        // The acceptance shape: a queue-wait span and a solve span in the
        // same trace, parented under the root request span.
        const auto& spans = c.trace.spans();
        auto root = c.trace.find("srv.request");
        auto queue = c.trace.find("srv.queue_wait");
        auto solve = c.trace.find("srv.solve");
        ASSERT_NE(root, obs::TraceContext::npos);
        ASSERT_NE(queue, obs::TraceContext::npos);
        ASSERT_NE(solve, obs::TraceContext::npos);
        EXPECT_EQ(spans[root].parent, -1);
        EXPECT_EQ(spans[queue].parent, static_cast<std::int32_t>(root));
        EXPECT_EQ(spans[solve].parent, static_cast<std::int32_t>(root));
        // Cache off: the solve path reaches membership and the solver.
        EXPECT_NE(c.trace.find("asg.membership"), obs::TraceContext::npos);
        EXPECT_NE(c.trace.find("asp.solve"), obs::TraceContext::npos);
        EXPECT_GT(c.trace.total_us(), 0u);
    }
    EXPECT_EQ(service.snapshot_stats().traces_captured, 8u);

    std::string json = service.captured_traces_json();
    EXPECT_NE(json.find("srv.queue_wait"), std::string::npos);
    EXPECT_NE(json.find("srv.solve"), std::string::npos);
}

TEST(DecisionService, SlowThresholdKeepsOnlySlowRequests) {
    auto ams = make_demo_ams(4, /*context_weight=*/0);
    // Threshold far above anything the demo domain can take: tracing runs,
    // nothing is kept.
    ServiceOptions options = service_options(2);
    options.trace.slow_threshold_us = 60'000'000;
    DecisionService service(ams, options);
    for (int i = 0; i < 8; ++i) {
        service.submit(cfg::tokenize("do task_" + std::to_string(i % 4)));
    }
    service.drain();
    EXPECT_EQ(service.captured_traces().size(), 0u);
    EXPECT_EQ(service.snapshot_stats().traces_captured, 0u);

    // Threshold of 1us: every request is "slow".
    ServiceOptions eager = service_options(2);
    eager.trace.slow_threshold_us = 1;
    eager.trace.max_captured = 16;
    DecisionService eager_service(ams, eager);
    std::vector<std::future<Decision>> futures;
    for (int i = 0; i < 8; ++i) {
        futures.push_back(eager_service.submit(cfg::tokenize("do task_" + std::to_string(i % 4))));
    }
    for (auto& f : futures) f.get();
    eager_service.drain();
    auto captured = eager_service.captured_traces();
    ASSERT_GT(captured.size(), 0u);
    for (const auto& c : captured) EXPECT_EQ(c.reason, "slow");
}

TEST(DecisionService, CapturedStoreStaysBounded) {
    auto ams = make_demo_ams(2, /*context_weight=*/0);
    ServiceOptions options = service_options(2);
    options.trace.sample_every = 1;
    options.trace.max_captured = 4;
    DecisionService service(ams, options);
    for (int i = 0; i < 32; ++i) {
        service.submit(cfg::tokenize("do task_" + std::to_string(i % 2)));
    }
    service.drain();
    auto captured = service.captured_traces();
    EXPECT_EQ(captured.size(), 4u);
    // Captures are stored in completion order (not id order — workers
    // finish out of order); the bounded store keeps distinct requests.
    std::set<std::uint64_t> ids;
    for (const auto& c : captured) {
        EXPECT_GE(c.trace_id(), 1u);
        EXPECT_LE(c.trace_id(), 32u);
        ids.insert(c.trace_id());
    }
    EXPECT_EQ(ids.size(), 4u);
    EXPECT_EQ(service.snapshot_stats().traces_captured, 32u);
}

TEST(DecisionService, TracingOffAllocatesNoContexts) {
    auto ams = make_demo_ams(2, /*context_weight=*/0);
    DecisionService service(ams, service_options(2));  // trace knobs at zero
    auto decision = service.submit(cfg::tokenize("do task_0")).get();
    service.drain();
    EXPECT_GT(decision.trace_id, 0u);  // ids are assigned regardless
    EXPECT_EQ(service.captured_traces().size(), 0u);
}

}  // namespace
}  // namespace agenp::srv
