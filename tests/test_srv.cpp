// Serving layer: sharded versioned decision cache, concurrent decision
// service, closed-loop load generator (DESIGN.md section 8).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <optional>
#include <set>
#include <thread>
#include <utility>

#include "asp/parser.hpp"
#include "srv/loadgen.hpp"
#include "srv/router.hpp"
#include "srv/service.hpp"
#include "srv/transport.hpp"
#include "srv/wire.hpp"
#include "util/rng.hpp"

namespace agenp::srv {
namespace {

using namespace std::chrono_literals;

CacheKey key_for(const std::string& request, const std::string& context = "") {
    return DecisionCache::make_key(cfg::tokenize(request), asp::parse_program(context));
}

ServiceOptions service_options(std::size_t threads, std::size_t queue_capacity = 1024,
                               bool use_cache = true) {
    ServiceOptions options;
    options.threads = threads;
    options.queue_capacity = queue_capacity;
    options.use_cache = use_cache;
    return options;
}

TEST(DecisionCache, KeySeparatesRequestAndContext) {
    auto a = key_for("do patrol", "maxloa(3).");
    auto b = key_for("do patrol", "maxloa(4).");
    auto c = key_for("do strike", "maxloa(3).");
    std::set<std::string> texts = {a.text, b.text, c.text};
    EXPECT_EQ(texts.size(), 3u);
    // Same inputs -> same key.
    EXPECT_EQ(a.text, key_for("do patrol", "maxloa(3).").text);
    EXPECT_EQ(a.hash, key_for("do patrol", "maxloa(3).").hash);
}

TEST(DecisionCache, MissInsertHit) {
    DecisionCache cache;
    auto key = key_for("do patrol");
    EXPECT_FALSE(cache.lookup(key, 1).has_value());
    cache.insert(key, 1, true);
    auto hit = cache.lookup(key, 1);
    ASSERT_TRUE(hit.has_value());
    EXPECT_TRUE(*hit);
    auto stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.insertions, 1u);
    EXPECT_EQ(stats.entries, 1u);
}

TEST(DecisionCache, VersionBumpInvalidatesWithoutFlush) {
    DecisionCache cache;
    auto stale = key_for("do patrol");
    auto fresh = key_for("do observe");
    cache.insert(stale, 1, true);
    cache.insert(fresh, 2, false);
    // Model moved to v2: v1 entry misses and is lazily evicted; the v2
    // entry is untouched (no global flush).
    EXPECT_FALSE(cache.lookup(stale, 2).has_value());
    EXPECT_TRUE(cache.lookup(fresh, 2).has_value());
    auto stats = cache.stats();
    EXPECT_EQ(stats.invalidations, 1u);
    EXPECT_EQ(stats.entries, 1u);
}

TEST(DecisionCache, LruEvictsOldestAtCapacity) {
    CacheOptions options;
    options.shards = 1;  // deterministic LRU order
    options.capacity_bytes = 400;
    DecisionCache cache(options);
    // Each entry costs ~64 + key bytes, so ~5 entries fit.
    for (int i = 0; i < 32; ++i) {
        cache.insert(key_for("req " + std::to_string(i)), 1, true);
    }
    auto stats = cache.stats();
    EXPECT_GT(stats.evictions, 0u);
    EXPECT_LT(stats.entries, 32u);
    EXPECT_LE(stats.bytes, 400u);
    // The newest entry survived; the oldest was evicted.
    EXPECT_TRUE(cache.lookup(key_for("req 31"), 1).has_value());
    EXPECT_FALSE(cache.lookup(key_for("req 0"), 1).has_value());
}

TEST(DecisionCache, TouchedEntrySurvivesEviction) {
    CacheOptions options;
    options.shards = 1;
    options.capacity_bytes = 400;
    DecisionCache cache(options);
    cache.insert(key_for("hot"), 1, true);
    for (int i = 0; i < 16; ++i) {
        ASSERT_TRUE(cache.lookup(key_for("hot"), 1).has_value()) << "evicted after " << i;
        cache.insert(key_for("filler " + std::to_string(i)), 1, false);
    }
}

TEST(DecisionCache, ConcurrentHammering) {
    DecisionCache cache(CacheOptions{.capacity_bytes = 1 << 16, .shards = 8});
    constexpr int kThreads = 8;
    constexpr int kOpsPerThread = 4000;
    std::atomic<std::uint64_t> observed_hits{0}, observed_misses{0}, wrong{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            util::Rng rng(static_cast<std::uint64_t>(t) + 1);
            for (int i = 0; i < kOpsPerThread; ++i) {
                int id = static_cast<int>(rng.uniform(0, 63));
                bool expected = id % 2 == 0;
                auto key = key_for("req " + std::to_string(id));
                if (auto hit = cache.lookup(key, 1)) {
                    observed_hits.fetch_add(1);
                    if (*hit != expected) wrong.fetch_add(1);
                } else {
                    observed_misses.fetch_add(1);
                    cache.insert(key, 1, expected);
                }
            }
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(wrong.load(), 0u);
    EXPECT_EQ(observed_hits.load() + observed_misses.load(),
              static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
    auto stats = cache.stats();
    EXPECT_EQ(stats.hits, observed_hits.load());
    EXPECT_EQ(stats.misses, observed_misses.load());
    EXPECT_LE(stats.entries, 64u);
}

// --- service fixtures ---

// Permits "do task_i" iff i % 5 + 1 <= 3 under the demo maxloa(3) context.
bool demo_expected(std::size_t task) { return task % 5 + 1 <= 3; }

TEST(DecisionService, DecidesCorrectlyAndCaches) {
    auto ams = make_demo_ams(6, /*context_weight=*/0);
    DecisionService service(ams, service_options(2));
    for (int round = 0; round < 2; ++round) {
        for (std::size_t i = 0; i < 6; ++i) {
            Decision d = service.submit(cfg::tokenize("do task_" + std::to_string(i))).get();
            EXPECT_EQ(d.permitted(), demo_expected(i)) << "task_" << i;
            EXPECT_EQ(d.cache_hit, round == 1) << "task_" << i;
            EXPECT_NE(d.monitor_index, Decision::kNoIndex);
        }
    }
    auto stats = service.snapshot_stats();
    EXPECT_EQ(stats.completed, 12u);
    EXPECT_EQ(stats.cache.hits, 6u);
    EXPECT_EQ(stats.cache.misses, 6u);
    EXPECT_EQ(ams.monitor().history().size(), 12u);
}

TEST(DecisionService, SubmitBatchAndDrain) {
    auto ams = make_demo_ams(4, /*context_weight=*/0);
    DecisionService service(ams, service_options(4));
    std::vector<cfg::TokenString> requests;
    for (int i = 0; i < 40; ++i) {
        requests.push_back(cfg::tokenize("do task_" + std::to_string(i % 4)));
    }
    auto futures = service.submit_batch(std::move(requests));
    service.drain();
    auto stats = service.snapshot_stats();
    EXPECT_EQ(stats.queue_depth, 0u);
    EXPECT_EQ(stats.completed + stats.rejected_overload + stats.expired, 40u);
    for (auto& f : futures) {
        EXPECT_TRUE(f.wait_for(0s) == std::future_status::ready);
        (void)f.get();
    }
}

TEST(DecisionService, BackpressureRejectsWhenQueueFull) {
    auto ams = make_demo_ams(2, /*context_weight=*/0);
    // One slow worker + a 2-deep queue: flooding must shed load.
    ams.pep().set_effector([](const cfg::TokenString&, bool) { std::this_thread::sleep_for(2ms); });
    DecisionService service(ams, service_options(1, /*queue_capacity=*/2));
    std::vector<std::future<Decision>> futures;
    for (int i = 0; i < 64; ++i) futures.push_back(service.submit(cfg::tokenize("do task_0")));
    std::size_t overloaded = 0, decided = 0;
    for (auto& f : futures) {
        Decision d = f.get();
        if (d.outcome == Outcome::Overloaded) {
            ++overloaded;
            EXPECT_EQ(d.monitor_index, Decision::kNoIndex);
        } else {
            ++decided;
        }
    }
    EXPECT_GT(overloaded, 0u);
    EXPECT_GT(decided, 0u);
    auto stats = service.snapshot_stats();
    EXPECT_EQ(stats.rejected_overload, overloaded);
    EXPECT_EQ(stats.completed, decided);
}

TEST(DecisionService, DeadlineExpiresWhileQueued) {
    auto ams = make_demo_ams(2, /*context_weight=*/0);
    ams.pep().set_effector([](const cfg::TokenString&, bool) { std::this_thread::sleep_for(20ms); });
    DecisionService service(ams, service_options(1));
    // First request occupies the worker for 20ms; the second's 1ms deadline
    // lapses in the queue.
    auto blocker = service.submit(cfg::tokenize("do task_0"));
    auto doomed = service.submit(cfg::tokenize("do task_1"), 1ms);
    EXPECT_NE(blocker.get().outcome, Outcome::Expired);
    Decision d = doomed.get();
    EXPECT_EQ(d.outcome, Outcome::Expired);
    EXPECT_EQ(d.monitor_index, Decision::kNoIndex);
    EXPECT_EQ(service.snapshot_stats().expired, 1u);
}

TEST(DecisionService, ModelAdoptionInvalidatesByVersion) {
    auto ams = make_demo_ams(2, /*context_weight=*/0);
    DecisionService service(ams, service_options(2));
    Decision before = service.submit(cfg::tokenize("do task_0")).get();
    EXPECT_TRUE(before.permitted());
    EXPECT_TRUE(service.submit(cfg::tokenize("do task_0")).get().cache_hit);

    // Adopt a stricter model (everything requires clearance 5) with the
    // service running; version stamping must retire the old entries.
    service.update_model([&] {
        std::string text = "request -> \"do\" task { :- requires(L)@2, maxloa(M), L > M. }\n";
        text += "task -> \"task_0\" { requires(5). }\n";
        text += "task -> \"task_1\" { requires(5). }\n";
        ams.representations().store(asg::AnswerSetGrammar::parse(text), "test-adoption");
    });

    Decision after = service.submit(cfg::tokenize("do task_0")).get();
    EXPECT_FALSE(after.cache_hit);  // old entry is stale, not served
    EXPECT_FALSE(after.permitted());
    EXPECT_GT(after.model_version, before.model_version);
    // And the new verdict is itself cached.
    Decision again = service.submit(cfg::tokenize("do task_0")).get();
    EXPECT_TRUE(again.cache_hit);
    EXPECT_FALSE(again.permitted());
    EXPECT_GE(service.cache().stats().invalidations, 1u);
}

TEST(DecisionService, CacheOffEquivalence) {
    // The same randomized request stream must produce identical decisions
    // with the cache enabled and disabled.
    util::Rng rng(7);
    std::vector<cfg::TokenString> stream;
    for (int i = 0; i < 120; ++i) {
        stream.push_back(cfg::tokenize("do task_" + std::to_string(rng.uniform(0, 9))));
    }
    std::vector<bool> with_cache, without_cache;
    for (bool use_cache : {true, false}) {
        auto ams = make_demo_ams(10, /*context_weight=*/0);
        DecisionService service(ams, service_options(4, 1024, use_cache));
        std::vector<std::future<Decision>> futures;
        futures.reserve(stream.size());
        for (const auto& r : stream) futures.push_back(service.submit(r));
        for (auto& f : futures) {
            (use_cache ? with_cache : without_cache).push_back(f.get().permitted());
        }
    }
    EXPECT_EQ(with_cache, without_cache);
}

TEST(DecisionService, MemoOffEquivalence) {
    // The grounding memo must never change a decision: the same stream
    // with the memo on and off, decision cache disabled so every request
    // takes the miss path the memo accelerates.
    util::Rng rng(11);
    std::vector<cfg::TokenString> stream;
    for (int i = 0; i < 80; ++i) {
        stream.push_back(cfg::tokenize("do task_" + std::to_string(rng.uniform(0, 9))));
    }
    std::vector<bool> with_memo, without_memo;
    for (bool use_memo : {true, false}) {
        auto ams = make_demo_ams(10, /*context_weight=*/0);
        ServiceOptions options = service_options(4, 1024, /*use_cache=*/false);
        options.use_memo = use_memo;
        DecisionService service(ams, options);
        std::vector<std::future<Decision>> futures;
        futures.reserve(stream.size());
        for (const auto& r : stream) futures.push_back(service.submit(r));
        for (auto& f : futures) {
            (use_memo ? with_memo : without_memo).push_back(f.get().permitted());
        }
        ServiceStats stats = service.snapshot_stats();
        if (use_memo) {
            EXPECT_GT(stats.memo.hits + stats.memo.misses, 0u);
            EXPECT_GT(stats.memo.sat_hits, 0u);  // repeats served by verdict
        } else {
            EXPECT_EQ(stats.memo.hits + stats.memo.misses, 0u);
        }
    }
    EXPECT_EQ(with_memo, without_memo);
}

TEST(DecisionService, MemoEpochFollowsModelAdoption) {
    auto ams = make_demo_ams(2, /*context_weight=*/0);
    ServiceOptions options = service_options(2, 1024, /*use_cache=*/false);
    DecisionService service(ams, options);
    ASSERT_NE(service.grounding_memo(), nullptr);
    EXPECT_TRUE(service.submit(cfg::tokenize("do task_0")).get().permitted());
    EXPECT_EQ(service.grounding_memo()->epoch(), ams.model_version());

    service.update_model([&] {
        std::string text = "request -> \"do\" task { :- requires(L)@2, maxloa(M), L > M. }\n";
        text += "task -> \"task_0\" { requires(5). }\n";
        text += "task -> \"task_1\" { requires(5). }\n";
        ams.representations().store(asg::AnswerSetGrammar::parse(text), "test-adoption");
    });
    // The memo epoch tracked the version bump, so entries grounded under
    // the old model cannot be served for the new one.
    EXPECT_EQ(service.grounding_memo()->epoch(), ams.model_version());
    EXPECT_FALSE(service.submit(cfg::tokenize("do task_0")).get().permitted());
    // Under the new model the request re-grounds (stale entries invalidate
    // lazily) and the fresh verdict is correct on the repeat too.
    EXPECT_FALSE(service.submit(cfg::tokenize("do task_0")).get().permitted());
}

TEST(ConcurrentSubmitters, MemoOnAgainstSharedMemo) {
    // TSan-relevant: many workers decide through one sharded memo while
    // the decision cache is off, so every request exercises probe/insert.
    auto ams = make_demo_ams(8, /*context_weight=*/0);
    ServiceOptions options = service_options(4, 1 << 14, /*use_cache=*/false);
    DecisionService service(ams, options);
    constexpr int kClients = 8;
    constexpr int kPerClient = 100;
    std::atomic<std::uint64_t> wrong{0};
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            util::Rng rng(static_cast<std::uint64_t>(c) + 300);
            for (int i = 0; i < kPerClient; ++i) {
                auto task = static_cast<std::size_t>(rng.uniform(0, 7));
                Decision d =
                    service.submit(cfg::tokenize("do task_" + std::to_string(task))).get();
                if (d.permitted() != demo_expected(task)) wrong.fetch_add(1);
            }
        });
    }
    for (auto& t : clients) t.join();
    EXPECT_EQ(wrong.load(), 0u);
    ServiceStats stats = service.snapshot_stats();
    EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(kClients) * kPerClient);
    EXPECT_GT(stats.memo.sat_hits, 0u);
}

TEST(DecisionService, ConcurrentSubmittersAgainstOneCache) {
    auto ams = make_demo_ams(8, /*context_weight=*/0);
    DecisionService service(ams, service_options(4, 1 << 14));
    constexpr int kClients = 8;
    constexpr int kPerClient = 150;
    std::atomic<std::uint64_t> wrong{0};
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            util::Rng rng(static_cast<std::uint64_t>(c) + 100);
            for (int i = 0; i < kPerClient; ++i) {
                auto task = static_cast<std::size_t>(rng.uniform(0, 7));
                Decision d =
                    service.submit(cfg::tokenize("do task_" + std::to_string(task))).get();
                if (d.permitted() != demo_expected(task)) wrong.fetch_add(1);
            }
        });
    }
    for (auto& t : clients) t.join();
    EXPECT_EQ(wrong.load(), 0u);
    auto stats = service.snapshot_stats();
    EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(kClients) * kPerClient);
    EXPECT_GT(stats.cache.hits, 0u);
}

TEST(DecisionService, FeedbackFlowsToMonitorAndPAdaP) {
    auto ams = make_demo_ams(4, /*context_weight=*/0);
    DecisionService service(ams, service_options(2));
    Decision d = service.submit(cfg::tokenize("do task_0")).get();
    ASSERT_NE(d.monitor_index, Decision::kNoIndex);
    EXPECT_TRUE(service.give_feedback(d.monitor_index, false));
    EXPECT_FALSE(service.give_feedback(d.monitor_index + 1000, true));
    ASSERT_TRUE(ams.monitor().observed_accuracy().has_value());
    EXPECT_DOUBLE_EQ(*ams.monitor().observed_accuracy(), 0.0);
}

TEST(DecisionService, MonitorHistoryStaysBounded) {
    framework::AmsOptions options;
    options.monitor_capacity = 16;
    framework::AutonomousManagedSystem ams("bounded", demo_grammar(2, 0),
                                           ilp::HypothesisSpace{}, options);
    ams.pip().add_source("env", [] { return asp::parse_program("maxloa(3)."); });
    DecisionService service(ams, service_options(2));
    std::vector<std::future<Decision>> futures;
    for (int i = 0; i < 200; ++i) {
        futures.push_back(service.submit(cfg::tokenize("do task_" + std::to_string(i % 2))));
    }
    for (auto& f : futures) (void)f.get();
    EXPECT_EQ(ams.monitor().history().size(), 16u);
    EXPECT_EQ(ams.monitor().total_recorded(), 200u);
}

TEST(Loadgen, ReportIsConsistentAndJsonWellFormed) {
    auto ams = make_demo_ams(6, /*context_weight=*/0);
    DecisionService service(ams, service_options(2));
    LoadgenOptions options;
    options.clients = 3;
    options.requests_per_client = 40;
    auto report = run_loadgen(service, demo_workload(6), options);
    EXPECT_EQ(report.requests, 120u);
    EXPECT_EQ(report.permitted + report.denied + report.overloaded + report.expired, 120u);
    EXPECT_GT(report.throughput_rps, 0.0);
    EXPECT_GE(report.p99_us, report.p50_us);
    EXPECT_GT(report.hit_rate, 0.0);
    auto json = report.to_json();
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    for (const char* field : {"\"requests\":", "\"throughput_rps\":", "\"p50_us\":",
                              "\"p99_us\":", "\"hit_rate\":"}) {
        EXPECT_NE(json.find(field), std::string::npos) << field;
    }
}

// --- flight recorder ---

TEST(FlightRecorder, WraparoundKeepsNewestWithMonotoneIds) {
    FlightRecorder ring(8);
    EXPECT_EQ(ring.capacity(), 8u);
    for (std::uint64_t i = 1; i <= 20; ++i) {
        FlightRecord r;
        r.id = i;
        r.total_us = i * 10;
        ring.record(r);
    }
    EXPECT_EQ(ring.total_recorded(), 20u);
    auto records = ring.snapshot();
    ASSERT_EQ(records.size(), 8u);
    // The ring retains exactly the newest 8, oldest first.
    for (std::size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(records[i].id, 13 + i);
        EXPECT_EQ(records[i].total_us, (13 + i) * 10);
        if (i > 0) {
            EXPECT_GT(records[i].id, records[i - 1].id);
        }
    }
}

TEST(FlightRecorder, SnapshotNeverMixesFieldsOfTwoRecords) {
    FlightRecorder ring(16);
    constexpr int kThreads = 8;
    constexpr int kOpsPerThread = 2000;
    std::vector<std::thread> writers;
    writers.reserve(kThreads);
    std::atomic<bool> stop{false};
    // Writers emit records whose fields are all derived from one value, so
    // any torn read surfaces as an internally inconsistent record.
    for (int t = 0; t < kThreads; ++t) {
        writers.emplace_back([&, t] {
            for (int i = 0; i < kOpsPerThread; ++i) {
                std::uint64_t v = static_cast<std::uint64_t>(t) * kOpsPerThread + i + 1;
                FlightRecord r;
                r.id = v;
                r.queue_us = v * 2;
                r.solve_us = v * 3;
                r.total_us = v * 5;
                ring.record(r);
            }
        });
    }
    std::size_t snapshots_taken = 0;
    while (!stop.load()) {
        for (const auto& r : ring.snapshot()) {
            EXPECT_EQ(r.queue_us, r.id * 2);
            EXPECT_EQ(r.solve_us, r.id * 3);
            EXPECT_EQ(r.total_us, r.id * 5);
        }
        ++snapshots_taken;
        if (ring.total_recorded() >= static_cast<std::uint64_t>(kThreads) * kOpsPerThread) {
            stop.store(true);
        }
    }
    for (auto& w : writers) w.join();
    EXPECT_GT(snapshots_taken, 0u);
    EXPECT_EQ(ring.total_recorded(), static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
}

TEST(FlightRecorder, JsonLinesRenderOnePerRecord) {
    FlightRecorder ring(4);
    FlightRecord r;
    r.id = 9;
    r.outcome = 1;
    r.cache_hit = true;
    ring.record(r);
    std::string lines = ring.render_json_lines();
    EXPECT_NE(lines.find("\"id\":9"), std::string::npos);
    EXPECT_NE(lines.find("\"cache_hit\":true"), std::string::npos);
}

TEST(DecisionService, FlightRingSeesEveryRequest) {
    auto ams = make_demo_ams(4, /*context_weight=*/0);
    ServiceOptions options = service_options(2);
    options.flight_capacity = 64;
    DecisionService service(ams, options);
    std::vector<std::future<Decision>> futures;
    for (int i = 0; i < 20; ++i) {
        futures.push_back(service.submit(cfg::tokenize("do task_" + std::to_string(i % 4))));
    }
    std::set<std::uint64_t> decision_ids;
    for (auto& f : futures) decision_ids.insert(f.get().trace_id);
    service.drain();
    EXPECT_EQ(service.flight().total_recorded(), 20u);
    std::set<std::uint64_t> recorded_ids;
    for (const auto& r : service.flight().snapshot()) recorded_ids.insert(r.id);
    // Every decision's trace id has a flight record.
    for (auto id : decision_ids) EXPECT_TRUE(recorded_ids.count(id)) << id;
}

// --- tail-based trace capture ---

TEST(DecisionService, SampledCaptureProducesSpanTree) {
    auto ams = make_demo_ams(4, /*context_weight=*/0);
    ServiceOptions options = service_options(2, 1024, /*use_cache=*/false);
    options.use_memo = false;  // keep the full ground+solve path in every trace
    options.trace.sample_every = 1;  // capture everything
    options.trace.max_captured = 64;
    DecisionService service(ams, options);
    std::vector<std::future<Decision>> futures;
    for (int i = 0; i < 8; ++i) {
        futures.push_back(service.submit(cfg::tokenize("do task_" + std::to_string(i % 4))));
    }
    std::set<std::uint64_t> decision_ids;
    for (auto& f : futures) decision_ids.insert(f.get().trace_id);
    service.drain();

    auto captured = service.captured_traces();
    ASSERT_EQ(captured.size(), 8u);
    for (const auto& c : captured) {
        EXPECT_EQ(c.reason, "sample");
        EXPECT_TRUE(decision_ids.count(c.trace_id())) << c.trace_id();
        // The acceptance shape: a queue-wait span and a solve span in the
        // same trace, parented under the root request span.
        const auto& spans = c.trace.spans();
        auto root = c.trace.find("srv.request");
        auto queue = c.trace.find("srv.queue_wait");
        auto solve = c.trace.find("srv.solve");
        ASSERT_NE(root, obs::TraceContext::npos);
        ASSERT_NE(queue, obs::TraceContext::npos);
        ASSERT_NE(solve, obs::TraceContext::npos);
        EXPECT_EQ(spans[root].parent, -1);
        EXPECT_EQ(spans[queue].parent, static_cast<std::int32_t>(root));
        EXPECT_EQ(spans[solve].parent, static_cast<std::int32_t>(root));
        // Cache off: the solve path reaches membership and the solver.
        EXPECT_NE(c.trace.find("asg.membership"), obs::TraceContext::npos);
        EXPECT_NE(c.trace.find("asp.solve"), obs::TraceContext::npos);
        EXPECT_GT(c.trace.total_us(), 0u);
    }
    EXPECT_EQ(service.snapshot_stats().traces_captured, 8u);

    std::string json = service.captured_traces_json();
    EXPECT_NE(json.find("srv.queue_wait"), std::string::npos);
    EXPECT_NE(json.find("srv.solve"), std::string::npos);
}

TEST(DecisionService, SlowThresholdKeepsOnlySlowRequests) {
    auto ams = make_demo_ams(4, /*context_weight=*/0);
    // Threshold far above anything the demo domain can take: tracing runs,
    // nothing is kept.
    ServiceOptions options = service_options(2);
    options.trace.slow_threshold_us = 60'000'000;
    DecisionService service(ams, options);
    for (int i = 0; i < 8; ++i) {
        service.submit(cfg::tokenize("do task_" + std::to_string(i % 4)));
    }
    service.drain();
    EXPECT_EQ(service.captured_traces().size(), 0u);
    EXPECT_EQ(service.snapshot_stats().traces_captured, 0u);

    // Threshold of 1us: every request is "slow".
    ServiceOptions eager = service_options(2);
    eager.trace.slow_threshold_us = 1;
    eager.trace.max_captured = 16;
    DecisionService eager_service(ams, eager);
    std::vector<std::future<Decision>> futures;
    for (int i = 0; i < 8; ++i) {
        futures.push_back(eager_service.submit(cfg::tokenize("do task_" + std::to_string(i % 4))));
    }
    for (auto& f : futures) f.get();
    eager_service.drain();
    auto captured = eager_service.captured_traces();
    ASSERT_GT(captured.size(), 0u);
    for (const auto& c : captured) EXPECT_EQ(c.reason, "slow");
}

TEST(DecisionService, CapturedStoreStaysBounded) {
    auto ams = make_demo_ams(2, /*context_weight=*/0);
    ServiceOptions options = service_options(2);
    options.trace.sample_every = 1;
    options.trace.max_captured = 4;
    DecisionService service(ams, options);
    for (int i = 0; i < 32; ++i) {
        service.submit(cfg::tokenize("do task_" + std::to_string(i % 2)));
    }
    service.drain();
    auto captured = service.captured_traces();
    EXPECT_EQ(captured.size(), 4u);
    // Captures are stored in completion order (not id order — workers
    // finish out of order); the bounded store keeps distinct requests.
    std::set<std::uint64_t> ids;
    for (const auto& c : captured) {
        EXPECT_GE(c.trace_id(), 1u);
        EXPECT_LE(c.trace_id(), 32u);
        ids.insert(c.trace_id());
    }
    EXPECT_EQ(ids.size(), 4u);
    EXPECT_EQ(service.snapshot_stats().traces_captured, 32u);
}

TEST(DecisionService, TracingOffAllocatesNoContexts) {
    auto ams = make_demo_ams(2, /*context_weight=*/0);
    DecisionService service(ams, service_options(2));  // trace knobs at zero
    auto decision = service.submit(cfg::tokenize("do task_0")).get();
    service.drain();
    EXPECT_GT(decision.trace_id, 0u);  // ids are assigned regardless
    EXPECT_EQ(service.captured_traces().size(), 0u);
}

// --- wire protocol ----------------------------------------------------------

TEST(Wire, ParsesDecideOpIdAndTimeout) {
    std::string error;
    auto r = parse_wire_request(R"({"id":7,"decide":"do patrol","timeout_ms":250})", &error);
    ASSERT_TRUE(r.has_value()) << error;
    EXPECT_EQ(r->decide, "do patrol");
    EXPECT_TRUE(r->has_id);
    EXPECT_EQ(r->id, 7u);
    EXPECT_EQ(r->timeout_ms, 250u);

    auto ping = parse_wire_request(R"({"op":"ping"})", &error);
    ASSERT_TRUE(ping.has_value()) << error;
    EXPECT_EQ(ping->op, "ping");
    EXPECT_FALSE(ping->has_id);

    // Unknown fields are ignored (forward compatibility).
    auto fwd = parse_wire_request(R"({"decide":"do patrol","future_field":[1,2]})", &error);
    EXPECT_TRUE(fwd.has_value()) << error;
}

TEST(Wire, RejectsMalformedRequestsWithStableMessages) {
    const std::pair<const char*, const char*> cases[] = {
        {"[1,2,3]", "line is not a JSON object"},
        {R"({"id":5,"decide":42})", "field 'decide' must be a string"},
        {R"({"decide":"do patrol","op":"ping"})", "request cannot carry both 'decide' and 'op'"},
        {R"({"op":"reboot"})", "unknown op (supported: ping)"},
        {"{}", "request needs a 'decide' or 'op' field"},
        {R"({"id":"seven","decide":"do patrol"})", "field 'id' must be a non-negative integer"},
        {R"({"decide":""})", "field 'decide' must not be empty"},
        {R"({"decide":"x","timeout_ms":-1})", "field 'timeout_ms' must be a non-negative integer"},
    };
    for (const auto& [line, want] : cases) {
        std::string error;
        std::optional<std::uint64_t> id;
        EXPECT_FALSE(parse_wire_request(line, &error, &id).has_value()) << line;
        EXPECT_EQ(error, want) << line;
    }
    // A readable id still correlates the error reply.
    std::string error;
    std::optional<std::uint64_t> id;
    EXPECT_FALSE(parse_wire_request(R"({"id":5,"decide":42})", &error, &id).has_value());
    ASSERT_TRUE(id.has_value());
    EXPECT_EQ(*id, 5u);
}

TEST(Wire, ValidatesUtf8) {
    EXPECT_TRUE(valid_utf8("plain ascii"));
    EXPECT_TRUE(valid_utf8("caf\xc3\xa9 \xe2\x82\xac \xf0\x9f\x9a\x80"));
    EXPECT_FALSE(valid_utf8("\xff\xfe"));
    EXPECT_FALSE(valid_utf8("\xc0\xaf"));          // overlong '/'
    EXPECT_FALSE(valid_utf8("\xed\xa0\x80"));      // surrogate
    EXPECT_FALSE(valid_utf8("truncated \xe2\x82"));
}

// --- AmsRouter --------------------------------------------------------------

// Factory handing each replica its own demo AMS; `solve_delay` attaches a
// PIP source that sleeps, making every cache miss measurably slow.
AmsRouter::AmsFactory demo_factory(std::size_t distinct = 6,
                                   std::chrono::milliseconds solve_delay = 0ms) {
    return [distinct, solve_delay] {
        auto ams = std::make_unique<framework::AutonomousManagedSystem>(
            make_demo_ams(distinct, /*context_weight=*/0));
        if (solve_delay.count() > 0) {
            ams->pip().add_source("slow", [solve_delay] {
                std::this_thread::sleep_for(solve_delay);
                return asp::Program{};
            });
        }
        return ams;
    };
}

RouterOptions router_options(std::size_t replicas, std::size_t threads,
                             std::size_t queue_capacity = 1024) {
    RouterOptions options;
    options.replicas = replicas;
    options.service = service_options(threads, queue_capacity);
    return options;
}

TEST(AmsRouter, AffinityIsDeterministicAndCorrect) {
    AmsRouter router(demo_factory(), router_options(3, 1));
    ASSERT_EQ(router.replicas(), 3u);
    auto tokens = cfg::tokenize("do task_0");
    std::size_t target = router.replica_for(tokens);
    EXPECT_LT(target, 3u);
    EXPECT_EQ(router.replica_for(cfg::tokenize("do task_0")), target);

    for (int i = 0; i < 8; ++i) EXPECT_TRUE(router.submit(tokens).get().permitted());
    router.drain();
    RouterStats stats = router.snapshot_stats();
    EXPECT_EQ(stats.routed_affinity, 8u);
    EXPECT_EQ(stats.routed_fallback, 0u);
    ASSERT_EQ(stats.replicas.size(), 3u);
    EXPECT_EQ(stats.replicas[target].service.completed, 8u);
    EXPECT_EQ(stats.total.completed, 8u);
    // Repeat hits stay in the affinity replica's cache.
    EXPECT_EQ(stats.total.cache.misses, 1u);
    EXPECT_EQ(stats.total.cache.hits, 7u);
}

TEST(AmsRouter, OutcomesMatchSingleServiceAcrossReplicas) {
    AmsRouter router(demo_factory(), router_options(3, 2));
    for (int round = 0; round < 2; ++round) {
        for (std::size_t i = 0; i < 6; ++i) {
            Decision d = router.submit(cfg::tokenize("do task_" + std::to_string(i))).get();
            EXPECT_EQ(d.permitted(), demo_expected(i)) << "task_" << i;
        }
    }
    router.drain();
    EXPECT_EQ(router.snapshot_stats().total.completed, 12u);
}

TEST(AmsRouter, FallbackSpillsWhenPrimarySaturated) {
    // One worker per replica, queue room for one waiter, and a solve slow
    // enough that repeats of one request pile up on their affinity replica.
    AmsRouter router(demo_factory(2, 30ms), router_options(2, 1, 1));
    auto tokens = cfg::tokenize("do task_0");
    std::vector<std::future<Decision>> futures;
    for (int i = 0; i < 8; ++i) futures.push_back(router.submit(tokens));
    for (auto& f : futures) (void)f.get();
    router.drain();
    RouterStats stats = router.snapshot_stats();
    EXPECT_GT(stats.routed_fallback, 0u);
    EXPECT_EQ(stats.routed_affinity + stats.routed_fallback, 8u);
    // Both replicas saw work: the spill really crossed the shard boundary.
    EXPECT_GT(stats.replicas[0].service.submitted, 0u);
    EXPECT_GT(stats.replicas[1].service.submitted, 0u);
}

TEST(AmsRouter, UpdateModelBroadcastsAndVersionsAgree) {
    AmsRouter router(demo_factory(), router_options(3, 1));
    EXPECT_EQ(router.model_version(), 0u);
    EXPECT_TRUE(router.snapshot_stats().versions_agree);

    std::uint64_t version = router.update_model([](framework::AutonomousManagedSystem& ams) {
        ams.representations().store(ams.model(), "router broadcast test");
    });
    EXPECT_EQ(version, 1u);
    EXPECT_EQ(router.model_version(), 1u);
    RouterStats stats = router.snapshot_stats();
    EXPECT_TRUE(stats.versions_agree);
    EXPECT_EQ(stats.model_version, 1u);
    for (const auto& replica : stats.replicas) EXPECT_EQ(replica.model_version, 1u);
    // Decisions after the update carry the new version.
    Decision d = router.submit(cfg::tokenize("do task_0")).get();
    EXPECT_EQ(d.model_version, 1u);
}

TEST(AmsRouter, RequestIdsStayUniqueAcrossReplicas) {
    AmsRouter router(demo_factory(), router_options(3, 2));
    std::vector<std::future<Decision>> futures;
    for (std::size_t i = 0; i < 30; ++i) {
        futures.push_back(router.submit(cfg::tokenize("do task_" + std::to_string(i % 6))));
    }
    for (auto& f : futures) (void)f.get();
    router.drain();
    auto records = router.flight_snapshot();
    ASSERT_EQ(records.size(), 30u);
    std::set<std::uint64_t> ids;
    for (const auto& r : records) ids.insert(r.id);
    EXPECT_EQ(ids.size(), 30u);  // offset/stride makes ids globally unique
    // flight_snapshot merges sorted by id.
    for (std::size_t i = 1; i < records.size(); ++i) {
        EXPECT_LT(records[i - 1].id, records[i].id);
    }
}

// --- persistence (src/store warm restarts) ----------------------------------

TEST(DecisionCache, ExportRestoreRoundTripPreservesVersionStamps) {
    DecisionCache source;
    source.insert(key_for("do patrol", "maxloa(3)."), 1, true);
    source.insert(key_for("do strike", "maxloa(3)."), 2, false);
    auto exported = source.export_entries();
    ASSERT_EQ(exported.size(), 2u);

    DecisionCache target;
    auto counts = target.restore_entries(exported);
    EXPECT_EQ(counts.restored, 2u);
    EXPECT_EQ(counts.skipped, 0u);
    auto patrol = target.lookup(key_for("do patrol", "maxloa(3)."), 1);
    ASSERT_TRUE(patrol.has_value());
    EXPECT_TRUE(*patrol);
    auto strike = target.lookup(key_for("do strike", "maxloa(3)."), 2);
    ASSERT_TRUE(strike.has_value());
    EXPECT_FALSE(*strike);
    EXPECT_EQ(target.stats().entries, 2u);
}

TEST(DecisionCache, RestoredStaleEntriesInvalidateLazily) {
    DecisionCache source;
    source.insert(key_for("do patrol"), 1, true);
    DecisionCache target;
    target.restore_entries(source.export_entries());
    // The model moved on while the process was down: the restored entry
    // must miss and retire, exactly like a live entry after update_model.
    EXPECT_FALSE(target.lookup(key_for("do patrol"), 2).has_value());
    EXPECT_EQ(target.stats().invalidations, 1u);
    EXPECT_EQ(target.stats().entries, 0u);
}

TEST(DecisionCache, RestoreDuplicateKeyKeepsLaterEntry) {
    // WAL entries are replayed after the snapshot's: on a duplicate key
    // the later (newer) verdict must win.
    auto key = key_for("do patrol");
    DecisionCache target;
    auto counts = target.restore_entries({{key.text, 1, true}, {key.text, 2, false}});
    // The overwrite counts as the same entry, not a second restore.
    EXPECT_EQ(counts.restored, 1u);
    EXPECT_EQ(counts.skipped, 0u);
    EXPECT_EQ(target.stats().entries, 1u);
    auto hit = target.lookup(key, 2);
    ASSERT_TRUE(hit.has_value());
    EXPECT_FALSE(*hit);
}

TEST(DecisionCache, RestoreSkipsNotEvictsWhenOverBudget) {
    CacheOptions small;
    small.shards = 1;
    small.capacity_bytes = 1;  // room for exactly one entry (never zero)
    DecisionCache target(small);
    std::vector<CacheEntry> entries = {{key_for("do task_0").text, 0, true},
                                       {key_for("do task_1").text, 0, true},
                                       {key_for("do task_2").text, 0, false}};
    auto counts = target.restore_entries(entries);
    // Hottest-first input: the first entry lands, the rest are skipped
    // rather than evicting what was already restored.
    EXPECT_EQ(counts.restored, 1u);
    EXPECT_EQ(counts.skipped, 2u);
    EXPECT_TRUE(target.lookup(key_for("do task_0"), 0).has_value());
    EXPECT_FALSE(target.lookup(key_for("do task_1"), 0).has_value());
}

TEST(DecisionCache, OnInsertHookFiresOnInsertNotOnRestore) {
    std::vector<CacheEntry> seen;
    CacheOptions options;
    options.on_insert = [&seen](const CacheEntry& entry) { seen.push_back(entry); };
    DecisionCache cache(options);
    auto key = key_for("do patrol", "maxloa(3).");
    cache.insert(key, 3, true);
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_EQ(seen[0].text, key.text);
    EXPECT_EQ(seen[0].model_version, 3u);
    EXPECT_TRUE(seen[0].permitted);
    // Restores must not echo back into the hook — that would write the
    // snapshot straight into the WAL it was just read from.
    cache.restore_entries(seen);
    EXPECT_EQ(seen.size(), 1u);
}

TEST(DecisionCache, ShardCountRoundsUpToPowerOfTwo) {
    CacheOptions options;
    options.shards = 5;
    EXPECT_EQ(DecisionCache(options).shard_count(), 8u);
    options.shards = 1;
    EXPECT_EQ(DecisionCache(options).shard_count(), 1u);
}

TEST(DecisionCache, RequestTextOfKeySplitsAtSeparator) {
    auto key = key_for("do patrol", "maxloa(3).");
    EXPECT_EQ(DecisionCache::request_text_of_key(key.text), "do patrol");
    // No separator (not a well-formed key): the whole text is the request.
    EXPECT_EQ(DecisionCache::request_text_of_key("plain"), "plain");
}

TEST(AmsRouter, ExportRestoreWarmsCacheAcrossReplicaCounts) {
    // Persist from a 1-replica router, restore into a 3-replica one: the
    // entries must follow their requests to the new affinity replicas.
    store::SnapshotData data;
    {
        AmsRouter source(demo_factory(), router_options(1, 2));
        for (std::size_t i = 0; i < 6; ++i) {
            (void)source.submit(cfg::tokenize("do task_" + std::to_string(i))).get();
        }
        source.drain();
        data = source.export_state();
    }
    EXPECT_EQ(data.entries.size(), 6u);

    AmsRouter target(demo_factory(), router_options(3, 2));
    StateRestoreReport report = target.restore_state(data);
    EXPECT_EQ(report.entries_restored, 6u);
    EXPECT_EQ(report.entries_skipped, 0u);
    EXPECT_TRUE(report.warning.empty());

    for (std::size_t i = 0; i < 6; ++i) {
        Decision d = target.submit(cfg::tokenize("do task_" + std::to_string(i))).get();
        EXPECT_TRUE(d.cache_hit) << "task_" << i;
        EXPECT_EQ(d.permitted(), demo_expected(i)) << "task_" << i;
    }
    target.drain();
    RouterStats stats = target.snapshot_stats();
    EXPECT_EQ(stats.total.cache.hits, 6u);
    EXPECT_EQ(stats.total.cache.misses, 0u);

    // Restore must not disturb the id_offset/id_stride flight-id
    // partitioning: every post-restore request still gets a unique id.
    auto records = target.flight_snapshot();
    ASSERT_EQ(records.size(), 6u);
    std::set<std::uint64_t> ids;
    for (const auto& r : records) ids.insert(r.id);
    EXPECT_EQ(ids.size(), 6u);
}

TEST(AmsRouter, RestoreStateRebuildsModelAndPoliciesOnEveryReplica) {
    store::SnapshotData data;
    {
        AmsRouter source(demo_factory(), router_options(2, 1));
        source.update_model([](framework::AutonomousManagedSystem& ams) {
            ams.representations().store(ams.model(), "adopted before crash");
            ams.policies().replace({cfg::tokenize("do task_0")}, "prep", 1);
        });
        data = source.export_state();
    }
    EXPECT_EQ(data.model_version, 1u);
    EXPECT_FALSE(data.model_text.empty());
    EXPECT_EQ(data.model_note, "adopted before crash");
    ASSERT_EQ(data.policies.size(), 1u);

    AmsRouter target(demo_factory(), router_options(2, 1));
    StateRestoreReport report = target.restore_state(data);
    EXPECT_TRUE(report.model_restored);
    EXPECT_EQ(report.model_version, 1u);
    EXPECT_EQ(report.policies_restored, 1u);
    EXPECT_TRUE(report.warning.empty()) << report.warning;

    RouterStats stats = target.snapshot_stats();
    EXPECT_EQ(stats.model_version, 1u);
    EXPECT_TRUE(stats.versions_agree);
    Decision d = target.submit(cfg::tokenize("do task_0")).get();
    EXPECT_EQ(d.model_version, 1u);
    EXPECT_TRUE(d.permitted());

    // A second export reproduces the persisted provenance verbatim.
    store::SnapshotData round2 = target.export_state();
    EXPECT_EQ(round2.model_note, "adopted before crash");
    EXPECT_EQ(round2.repo_version, 1u);
    ASSERT_EQ(round2.policies.size(), 1u);
    EXPECT_EQ(round2.policies[0].source, "prep");
}

TEST(AmsRouter, RestoreStateWithUnparseableModelWarnsAndServesInitial) {
    store::SnapshotData data;
    data.model_version = 2;
    data.model_text = "this is -> not ->-> a grammar {{{";
    AmsRouter router(demo_factory(), router_options(1, 1));
    StateRestoreReport report = router.restore_state(data);
    EXPECT_FALSE(report.model_restored);
    EXPECT_NE(report.warning.find("unparseable"), std::string::npos) << report.warning;
    // The initial demo model still decides correctly.
    EXPECT_TRUE(router.submit(cfg::tokenize("do task_0")).get().permitted());
}

// --- TCP transport ----------------------------------------------------------

TEST(Transport, RoundTripMatchesInProcessDecisions) {
    AmsRouter router(demo_factory(), router_options(1, 2));
    TcpServer server(router, TransportOptions{});
    TcpClient client("127.0.0.1", server.port());
    for (int round = 0; round < 2; ++round) {
        for (std::size_t i = 0; i < 6; ++i) {
            client.send_line("{\"id\":" + std::to_string(i) + ",\"decide\":\"do task_" +
                             std::to_string(i) + "\"}");
            auto reply = client.recv_line();
            ASSERT_TRUE(reply.has_value()) << "task_" << i;
            auto json = parse_json(*reply);
            ASSERT_TRUE(json.has_value() && json->is_object()) << *reply;
            EXPECT_EQ(json->find("id")->as_uint(), i);
            EXPECT_EQ(json->find("outcome")->string, demo_expected(i) ? "permit" : "deny");
            EXPECT_EQ(json->find("cache_hit")->boolean, round == 1);
            EXPECT_NE(json->find("latency_us"), nullptr);
            EXPECT_NE(json->find("trace_id"), nullptr);
        }
    }
    server.shutdown();
    TransportStats stats = server.stats();
    EXPECT_EQ(stats.accepted, 1u);
    EXPECT_EQ(stats.lines_in, 12u);
    EXPECT_EQ(stats.bad_requests, 0u);
    EXPECT_EQ(stats.active, 0u);
}

TEST(Transport, PipelinedRepliesCorrelateById) {
    AmsRouter router(demo_factory(), router_options(2, 2));
    TcpServer server(router, TransportOptions{});
    TcpClient client("127.0.0.1", server.port());
    const std::size_t n = 24;
    for (std::size_t i = 0; i < n; ++i) {
        client.send_line("{\"id\":" + std::to_string(i) + ",\"decide\":\"do task_" +
                         std::to_string(i % 6) + "\"}");
    }
    // Replies may arrive in any order; every id must come back exactly once.
    std::set<std::uint64_t> ids;
    for (std::size_t i = 0; i < n; ++i) {
        auto reply = client.recv_line();
        ASSERT_TRUE(reply.has_value()) << "reply " << i;
        auto json = parse_json(*reply);
        ASSERT_TRUE(json.has_value()) << *reply;
        const JsonValue* id = json->find("id");
        ASSERT_NE(id, nullptr) << *reply;
        EXPECT_TRUE(ids.insert(id->as_uint()).second) << "duplicate id " << id->as_uint();
    }
    EXPECT_EQ(ids.size(), n);
}

TEST(Transport, MalformedLinesGetStructuredErrorsAndConnectionSurvives) {
    AmsRouter router(demo_factory(), router_options(1, 1));
    TcpServer server(router, TransportOptions{});
    TcpClient client("127.0.0.1", server.port());

    const std::pair<const char*, const char*> cases[] = {
        {"[1,2,3]", "line is not a JSON object"},
        {"{\"op\":\"reboot\"}", "unknown op (supported: ping)"},
        {"{}", "request needs a 'decide' or 'op' field"},
        {"not json at all", "line is not a JSON object"},
        {"\xff\xfe\x01", "line is not valid UTF-8"},
    };
    for (const auto& [line, message] : cases) {
        client.send_line(line);
        auto reply = client.recv_line();
        ASSERT_TRUE(reply.has_value()) << line;
        auto json = parse_json(*reply);
        ASSERT_TRUE(json.has_value()) << *reply;
        EXPECT_EQ(json->find("error")->string, "bad_request") << *reply;
        EXPECT_EQ(json->find("message")->string, message) << *reply;
    }
    // The connection is still usable after every bad request.
    client.send_line("{\"op\":\"ping\",\"id\":99}");
    auto reply = client.recv_line();
    ASSERT_TRUE(reply.has_value());
    EXPECT_NE(reply->find("\"ok\":true"), std::string::npos);

    server.shutdown();
    TransportStats stats = server.stats();
    EXPECT_EQ(stats.bad_requests, 5u);
    EXPECT_EQ(stats.slow_client_disconnects, 0u);
    EXPECT_EQ(stats.active, 0u);
}

TEST(Transport, OversizedLineRepliesThenDisconnects) {
    AmsRouter router(demo_factory(), router_options(1, 1));
    TransportOptions options;
    options.max_line_bytes = 128;
    TcpServer server(router, options);
    TcpClient client("127.0.0.1", server.port());
    client.send_line("{\"decide\":\"" + std::string(500, 'x') + "\"}");
    auto reply = client.recv_line();
    ASSERT_TRUE(reply.has_value());
    EXPECT_NE(reply->find("line exceeds maximum length"), std::string::npos);
    // After the reply flushes the server closes: next read is EOF.
    EXPECT_FALSE(client.recv_line(std::chrono::milliseconds{5000}).has_value());
    server.shutdown();
    TransportStats stats = server.stats();
    EXPECT_EQ(stats.oversized_disconnects, 1u);
    EXPECT_EQ(stats.closed, stats.accepted);
    EXPECT_EQ(stats.active, 0u);  // no leaked connection slots
}

TEST(Transport, HalfCloseStillDeliversEveryReply) {
    AmsRouter router(demo_factory(), router_options(1, 2));
    TcpServer server(router, TransportOptions{});
    TcpClient client("127.0.0.1", server.port());
    const std::size_t n = 10;
    for (std::size_t i = 0; i < n; ++i) {
        client.send_line("{\"id\":" + std::to_string(i) + ",\"decide\":\"do task_" +
                         std::to_string(i % 6) + "\"}");
    }
    client.shutdown_write();  // half-close: no more requests
    std::size_t replies = 0;
    while (auto reply = client.recv_line()) {
        EXPECT_NE(reply->find("\"outcome\":"), std::string::npos) << *reply;
        ++replies;
    }
    EXPECT_EQ(replies, n);  // all delivered, then EOF
    server.shutdown();
    EXPECT_EQ(server.stats().active, 0u);
}

TEST(Transport, SlowClientHittingWriteBufferCapIsDisconnected) {
    AmsRouter router(demo_factory(), router_options(1, 1));
    TransportOptions options;
    options.max_write_buffer_bytes = 1;  // any reply exceeds the backlog cap
    TcpServer server(router, options);
    TcpClient client("127.0.0.1", server.port());
    client.send_line("{\"id\":1,\"decide\":\"do task_0\"}");
    // The reply cannot be buffered within the cap: the client is dropped.
    EXPECT_FALSE(client.recv_line(std::chrono::milliseconds{5000}).has_value());
    server.shutdown();
    TransportStats stats = server.stats();
    EXPECT_EQ(stats.slow_client_disconnects, 1u);
    EXPECT_EQ(stats.closed, stats.accepted);
    EXPECT_EQ(stats.active, 0u);  // the slot was reclaimed
}

TEST(Transport, ConnectionCapAnswersOverloadedInBand) {
    AmsRouter router(demo_factory(), router_options(1, 1));
    TransportOptions options;
    options.max_connections = 1;
    TcpServer server(router, options);
    TcpClient first("127.0.0.1", server.port());
    first.send_line("{\"op\":\"ping\"}");
    ASSERT_TRUE(first.recv_line().has_value());  // slot genuinely taken

    TcpClient second("127.0.0.1", server.port());
    auto reply = second.recv_line();
    ASSERT_TRUE(reply.has_value());
    EXPECT_NE(reply->find("\"error\":\"overloaded\""), std::string::npos);
    EXPECT_NE(reply->find("too many connections"), std::string::npos);
    EXPECT_FALSE(second.recv_line(std::chrono::milliseconds{5000}).has_value());  // then EOF
    server.shutdown();
}

TEST(Transport, IdleConnectionsAreReaped) {
    AmsRouter router(demo_factory(), router_options(1, 1));
    TransportOptions options;
    options.idle_timeout = std::chrono::milliseconds{50};
    TcpServer server(router, options);
    TcpClient client("127.0.0.1", server.port());
    // Send nothing: the server should close us on its own.
    EXPECT_FALSE(client.recv_line(std::chrono::milliseconds{10000}).has_value());
    server.shutdown();
    TransportStats stats = server.stats();
    EXPECT_EQ(stats.idle_disconnects, 1u);
    EXPECT_EQ(stats.active, 0u);
}

TEST(Transport, IdleTimerNeverDropsAnInFlightReply) {
    // Every solve outlasts the idle timeout, so each completion reaches
    // the idle check with an aged connection. The pending counter covers
    // the solve itself; the outbox must also be checked (a reply parked
    // there after the pending decrement, before the loop's next service
    // pass, would otherwise be discarded by an idle close).
    AmsRouter router(demo_factory(6, 50ms), router_options(1, 1));
    TransportOptions options;
    options.idle_timeout = std::chrono::milliseconds{25};
    TcpServer server(router, options);
    TcpClient client("127.0.0.1", server.port());
    for (std::size_t i = 0; i < 12; ++i) {
        client.send_line("{\"id\":" + std::to_string(i) + ",\"decide\":\"do task_" +
                         std::to_string(i % 6) + "\"}");
        auto reply = client.recv_line(std::chrono::milliseconds{10000});
        ASSERT_TRUE(reply.has_value()) << "reply " << i << " dropped by idle close";
        EXPECT_NE(reply->find("\"id\":" + std::to_string(i)), std::string::npos) << *reply;
    }
    server.shutdown();
    EXPECT_EQ(server.stats().idle_disconnects, 0u);
}

TEST(Transport, PingReportsReplicasAndModelVersion) {
    AmsRouter router(demo_factory(), router_options(3, 1));
    TcpServer server(router, TransportOptions{});
    TcpClient client("127.0.0.1", server.port());
    client.send_line("{\"op\":\"ping\",\"id\":1}");
    auto reply = client.recv_line();
    ASSERT_TRUE(reply.has_value());
    auto json = parse_json(*reply);
    ASSERT_TRUE(json.has_value());
    EXPECT_EQ(json->find("proto")->as_uint(), static_cast<std::uint64_t>(kProtocolVersion));
    EXPECT_EQ(json->find("replicas")->as_uint(), 3u);
    EXPECT_EQ(json->find("model_version")->as_uint(), 0u);

    router.update_model([](framework::AutonomousManagedSystem& ams) {
        ams.representations().store(ams.model(), "bump");
    });
    client.send_line("{\"op\":\"ping\"}");
    reply = client.recv_line();
    ASSERT_TRUE(reply.has_value());
    EXPECT_NE(reply->find("\"model_version\":1"), std::string::npos);
    server.shutdown();
}

TEST(Transport, GracefulShutdownDrainsInFlightReplies) {
    // Slow solves so requests are genuinely in flight when shutdown lands.
    AmsRouter router(demo_factory(2, 50ms), router_options(1, 1, 64));
    TcpServer server(router, TransportOptions{});
    TcpClient client("127.0.0.1", server.port());
    const std::size_t n = 3;
    for (std::size_t i = 0; i < n; ++i) {
        client.send_line("{\"id\":" + std::to_string(i) + ",\"decide\":\"do task_0\"}");
    }
    // Give the loop time to read and dispatch all three lines, then stop
    // the server while the worker is still solving.
    std::this_thread::sleep_for(30ms);
    std::thread stopper([&server] { server.shutdown(); });
    std::size_t replies = 0;
    while (auto reply = client.recv_line()) {
        EXPECT_NE(reply->find("\"id\":"), std::string::npos);
        ++replies;
    }
    stopper.join();
    EXPECT_EQ(replies, n);  // drain delivered every accepted decision
    EXPECT_EQ(server.stats().active, 0u);
}

TEST(Transport, DispatchLineSharesStdinAndTcpSemantics) {
    AmsRouter router(demo_factory(), router_options(1, 1));
    // Text mode: plain token line -> deferred outcome-name reply.
    std::promise<std::string> text_reply;
    DispatchResult r = dispatch_line(router, "do task_0", LineMode::Text, 0, {},
                                     [&](std::string reply) { text_reply.set_value(reply); });
    EXPECT_TRUE(r.deferred);
    EXPECT_EQ(text_reply.get_future().get(), "Permit");
    // Text mode still answers JSON lines with JSON (shared front door).
    std::promise<std::string> json_reply;
    r = dispatch_line(router, R"({"id":4,"decide":"do task_1"})", LineMode::Text, 0, {},
                      [&](std::string reply) { json_reply.set_value(reply); });
    EXPECT_TRUE(r.deferred);
    EXPECT_NE(json_reply.get_future().get().find("\"id\":4"), std::string::npos);
    // Json mode: a bare token line is a bad request, not a decision.
    r = dispatch_line(router, "do task_0", LineMode::Json, 0, {}, [](std::string) {});
    EXPECT_FALSE(r.deferred);
    EXPECT_TRUE(r.bad_request);
    // Control lines without a handler are rejected, not crashed.
    r = dispatch_line(router, "!stats", LineMode::Json, 0, {}, [](std::string) {});
    EXPECT_TRUE(r.bad_request);
    EXPECT_NE(r.immediate.find("control lines are not enabled"), std::string::npos);
    // Control lines with a handler get its reply verbatim.
    r = dispatch_line(
        router, "!stats", LineMode::Json, 0, [](std::string_view) { return "STATS"; },
        [](std::string) {});
    EXPECT_EQ(r.immediate, "STATS");
    EXPECT_FALSE(r.bad_request);
    router.drain();
}

}  // namespace
}  // namespace agenp::srv
