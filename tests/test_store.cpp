// Persistence subsystem (DESIGN.md §11): record framing + CRC, snapshot
// encode/decode, WAL append/replay, and the StateStore lifecycle —
// including the corruption shapes a kill -9 leaves behind (torn tails,
// half-written frames) and the refusal paths (newer format, missing
// footer).
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "store/framing.hpp"
#include "store/snapshot.hpp"
#include "store/store.hpp"
#include "store/wal.hpp"

namespace agenp::store {
namespace {

// A fresh private directory per test, removed (with its known files) on
// teardown.
class TempDir {
public:
    TempDir() {
        char tmpl[] = "/tmp/agenp_test_store.XXXXXX";
        char* made = ::mkdtemp(tmpl);
        EXPECT_NE(made, nullptr);
        if (made != nullptr) path_ = made;
    }
    ~TempDir() {
        if (path_.empty()) return;
        for (const char* name : {"snapshot.agenp", "snapshot.agenp.tmp", "wal.agenp", "file"}) {
            std::remove((path_ + "/" + name).c_str());
        }
        ::rmdir(path_.c_str());
    }
    [[nodiscard]] const std::string& path() const { return path_; }
    [[nodiscard]] std::string file(const std::string& name) const { return path_ + "/" + name; }

private:
    std::string path_;
};

std::string slurp(const std::string& path) {
    std::string contents;
    EXPECT_TRUE(read_file(path, &contents, nullptr)) << path;
    return contents;
}

void dump(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good()) << path;
}

SnapshotData sample_snapshot() {
    SnapshotData data;
    data.model_version = 3;
    data.model_text = "request -> \"do\" task\ntask -> \"patrol\"\n";
    data.model_note = "learned from 12 examples";
    data.repo_version = 3;
    data.repo_truncated = true;
    data.created_unix_s = 1754600000;
    data.policies.push_back({"do patrol", "prep", 3});
    data.policies.push_back({"do survey", "operator", 2});
    data.entries.push_back({std::string("do patrol\x1f") + "maxloa(3).", 3, true});
    data.entries.push_back({std::string("do strike\x1f") + "maxloa(3).", 3, false});
    return data;
}

// --- framing ----------------------------------------------------------------

TEST(Framing, Crc32MatchesKnownVector) {
    // The IEEE check value every CRC-32 implementation must reproduce.
    EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
    EXPECT_EQ(crc32(""), 0u);
    EXPECT_NE(crc32("a"), crc32("b"));
}

TEST(Framing, RecordsRoundTrip) {
    std::string buffer;
    append_record(buffer, "first");
    append_record(buffer, "");
    append_record(buffer, std::string(1000, 'x'));

    std::vector<std::string> payloads;
    std::size_t valid = read_records(buffer, &payloads);
    EXPECT_EQ(valid, buffer.size());
    ASSERT_EQ(payloads.size(), 3u);
    EXPECT_EQ(payloads[0], "first");
    EXPECT_EQ(payloads[1], "");
    EXPECT_EQ(payloads[2], std::string(1000, 'x'));
}

TEST(Framing, TornTailKeepsValidPrefix) {
    std::string buffer;
    append_record(buffer, "alpha");
    append_record(buffer, "beta");
    std::size_t two_records = buffer.size();
    append_record(buffer, "gamma");
    // A writer killed mid-append leaves part of the last frame.
    buffer.resize(two_records + 5);

    std::vector<std::string> payloads;
    std::size_t valid = read_records(buffer, &payloads);
    EXPECT_EQ(valid, two_records);
    ASSERT_EQ(payloads.size(), 2u);
    EXPECT_EQ(payloads[1], "beta");
}

TEST(Framing, CorruptCrcDiscardsRecordAndSuffix) {
    std::string buffer;
    append_record(buffer, "alpha");
    std::size_t one_record = buffer.size();
    append_record(buffer, "beta");
    append_record(buffer, "gamma");
    // Flip one payload byte inside "beta": its CRC no longer matches, and
    // the reader must not resynchronize onto "gamma" behind it.
    buffer[one_record + 8] ^= 0x01;

    std::vector<std::string> payloads;
    std::size_t valid = read_records(buffer, &payloads);
    EXPECT_EQ(valid, one_record);
    ASSERT_EQ(payloads.size(), 1u);
    EXPECT_EQ(payloads[0], "alpha");
}

TEST(Framing, OversizedLengthFieldIsInvalidNotAllocated) {
    std::string buffer;
    put_u32(buffer, kMaxRecordPayload + 1);
    put_u32(buffer, 0);
    buffer += "junk";
    std::vector<std::string> payloads;
    EXPECT_EQ(read_records(buffer, &payloads), 0u);
    EXPECT_TRUE(payloads.empty());
}

TEST(Framing, CursorPrimitivesRejectTruncation) {
    std::string buffer;
    put_u8(buffer, 7);
    put_u32(buffer, 0xDEADBEEF);
    put_u64(buffer, 1ull << 40);
    put_string(buffer, "hello");

    Cursor cursor{buffer};
    std::uint8_t u8 = 0;
    std::uint32_t u32 = 0;
    std::uint64_t u64 = 0;
    std::string s;
    EXPECT_TRUE(get_u8(cursor, &u8));
    EXPECT_TRUE(get_u32(cursor, &u32));
    EXPECT_TRUE(get_u64(cursor, &u64));
    EXPECT_TRUE(get_string(cursor, &s));
    EXPECT_EQ(u8, 7u);
    EXPECT_EQ(u32, 0xDEADBEEFu);
    EXPECT_EQ(u64, 1ull << 40);
    EXPECT_EQ(s, "hello");
    EXPECT_TRUE(cursor.done());

    Cursor truncated{std::string_view(buffer).substr(0, buffer.size() - 3)};
    EXPECT_TRUE(get_u8(truncated, &u8));
    EXPECT_TRUE(get_u32(truncated, &u32));
    EXPECT_TRUE(get_u64(truncated, &u64));
    EXPECT_FALSE(get_string(truncated, &s));
    EXPECT_EQ(s, "hello");  // outputs untouched on failure
}

TEST(Framing, AtomicWriteFileReplacesWholeFile) {
    TempDir dir;
    std::string path = dir.file("file");
    std::string error;
    ASSERT_TRUE(atomic_write_file(path, "one", &error)) << error;
    EXPECT_EQ(slurp(path), "one");
    ASSERT_TRUE(atomic_write_file(path, "two two", &error)) << error;
    EXPECT_EQ(slurp(path), "two two");
    // The transient .tmp never survives a successful write.
    std::string ignored;
    EXPECT_FALSE(read_file(path + ".tmp", &ignored, nullptr));
}

// --- snapshot ---------------------------------------------------------------

TEST(Snapshot, EncodeDecodeRoundTrip) {
    SnapshotData data = sample_snapshot();
    std::string bytes = encode_snapshot(data);

    SnapshotData out;
    std::string error;
    ASSERT_TRUE(decode_snapshot(bytes, &out, &error)) << error;
    EXPECT_EQ(out.model_version, data.model_version);
    EXPECT_EQ(out.model_text, data.model_text);
    EXPECT_EQ(out.model_note, data.model_note);
    EXPECT_EQ(out.repo_version, data.repo_version);
    EXPECT_EQ(out.repo_truncated, data.repo_truncated);
    EXPECT_EQ(out.created_unix_s, data.created_unix_s);
    ASSERT_EQ(out.policies.size(), 2u);
    EXPECT_EQ(out.policies[0].text, "do patrol");
    EXPECT_EQ(out.policies[1].source, "operator");
    ASSERT_EQ(out.entries.size(), 2u);
    EXPECT_EQ(out.entries[0].text, data.entries[0].text);
    EXPECT_EQ(out.entries[0].model_version, 3u);
    EXPECT_TRUE(out.entries[0].permitted);
    EXPECT_FALSE(out.entries[1].permitted);
}

TEST(Snapshot, NewerFormatVersionIsRefused) {
    // Forge a header one format version ahead: an older binary must refuse
    // the whole file rather than misread it.
    std::string payload;
    put_u8(payload, 1);  // header tag
    payload.append(kSnapshotMagic);
    put_u32(payload, kSnapshotFormatVersion + 1);
    std::string bytes;
    append_record(bytes, payload);

    SnapshotData out;
    std::string error;
    EXPECT_FALSE(decode_snapshot(bytes, &out, &error));
    EXPECT_NE(error.find("newer"), std::string::npos) << error;
}

TEST(Snapshot, WrongMagicIsRefused) {
    SnapshotData out;
    std::string error;
    std::string bytes;
    append_record(bytes, "\x01not a snapshot");
    EXPECT_FALSE(decode_snapshot(bytes, &out, &error));
    EXPECT_FALSE(decode_snapshot("", &out, &error));
}

TEST(Snapshot, MissingFooterRejectsWholeFile) {
    std::string bytes = encode_snapshot(sample_snapshot());
    // Drop the footer record: walk the frames and keep all but the last.
    std::vector<std::string> payloads;
    ASSERT_EQ(read_records(bytes, &payloads), bytes.size());
    ASSERT_GE(payloads.size(), 2u);
    std::string truncated;
    for (std::size_t i = 0; i + 1 < payloads.size(); ++i) append_record(truncated, payloads[i]);

    SnapshotData out;
    std::string error;
    EXPECT_FALSE(decode_snapshot(truncated, &out, &error));
    EXPECT_NE(error.find("footer"), std::string::npos) << error;
}

TEST(Snapshot, FooterCountMismatchIsRefused) {
    SnapshotData data = sample_snapshot();
    std::string bytes = encode_snapshot(data);
    std::vector<std::string> payloads;
    ASSERT_EQ(read_records(bytes, &payloads), bytes.size());
    // Drop one entry record but keep the footer: counts no longer match.
    std::string tampered;
    bool dropped = false;
    for (const auto& payload : payloads) {
        if (!dropped && !payload.empty() && payload[0] == 3) {
            dropped = true;
            continue;
        }
        append_record(tampered, payload);
    }
    ASSERT_TRUE(dropped);
    SnapshotData out;
    std::string error;
    EXPECT_FALSE(decode_snapshot(tampered, &out, &error));
}

TEST(Snapshot, CacheEntryPayloadSharedWithWal) {
    CacheEntryRecord entry{std::string("do patrol\x1f") + "maxloa(3).", 7, true};
    CacheEntryRecord out;
    ASSERT_TRUE(decode_cache_entry(encode_cache_entry(entry), &out));
    EXPECT_EQ(out.text, entry.text);
    EXPECT_EQ(out.model_version, 7u);
    EXPECT_TRUE(out.permitted);
    EXPECT_FALSE(decode_cache_entry("\x02junk", &out));  // wrong tag
}

// --- WAL --------------------------------------------------------------------

TEST(Wal, AppendThenReplay) {
    TempDir dir;
    std::string path = dir.file("wal.agenp");
    WalWriter writer;
    std::string error;
    ASSERT_TRUE(writer.open(path, &error)) << error;
    EXPECT_GT(writer.append({"a\x1f", 1, true}), 0u);
    EXPECT_GT(writer.append({"b\x1f", 1, false}), 0u);
    writer.close();

    WalReplay replay = replay_wal(path);
    EXPECT_TRUE(replay.present);
    EXPECT_EQ(replay.discarded_bytes, 0u);
    EXPECT_TRUE(replay.warning.empty());
    ASSERT_EQ(replay.entries.size(), 2u);
    EXPECT_EQ(replay.entries[0].text, "a\x1f");
    EXPECT_TRUE(replay.entries[0].permitted);
    EXPECT_FALSE(replay.entries[1].permitted);
}

TEST(Wal, MissingFileIsCleanEmptyReplay) {
    WalReplay replay = replay_wal("/nonexistent/path/wal.agenp");
    EXPECT_FALSE(replay.present);
    EXPECT_TRUE(replay.entries.empty());
    EXPECT_TRUE(replay.warning.empty());
}

TEST(Wal, TornTailIsDiscardedAndTruncationRestoresCleanAppends) {
    TempDir dir;
    std::string path = dir.file("wal.agenp");
    WalWriter writer;
    std::string error;
    ASSERT_TRUE(writer.open(path, &error)) << error;
    writer.append({"a\x1f", 1, true});
    writer.append({"b\x1f", 1, true});
    writer.close();

    // kill -9 mid-append: chop the file inside the last record.
    std::string bytes = slurp(path);
    dump(path, bytes.substr(0, bytes.size() - 3));

    WalReplay replay = replay_wal(path);
    EXPECT_TRUE(replay.present);
    ASSERT_EQ(replay.entries.size(), 1u);
    EXPECT_EQ(replay.entries[0].text, "a\x1f");
    EXPECT_GT(replay.discarded_bytes, 0u);
    EXPECT_FALSE(replay.warning.empty());

    // Truncate back to the valid prefix (what StateStore::restore does),
    // then append again: the new record lands on a clean prefix.
    ASSERT_TRUE(writer.open(path, &error)) << error;
    ASSERT_TRUE(writer.truncate_to(replay.valid_bytes));
    EXPECT_GT(writer.append({"c\x1f", 2, false}), 0u);
    writer.close();

    WalReplay again = replay_wal(path);
    ASSERT_EQ(again.entries.size(), 2u);
    EXPECT_EQ(again.entries[1].text, "c\x1f");
    EXPECT_EQ(again.discarded_bytes, 0u);
}

TEST(Wal, NewerFormatReplaysEmptyWithWarning) {
    TempDir dir;
    std::string path = dir.file("wal.agenp");
    std::string header;
    header.append(kWalMagic);
    put_u32(header, kWalFormatVersion + 1);
    std::string bytes;
    append_record(bytes, header);
    dump(path, bytes);

    WalReplay replay = replay_wal(path);
    EXPECT_TRUE(replay.present);
    EXPECT_TRUE(replay.entries.empty());
    EXPECT_FALSE(replay.warning.empty());
}

TEST(Wal, ResetEmptiesBackToHeader) {
    TempDir dir;
    std::string path = dir.file("wal.agenp");
    WalWriter writer;
    std::string error;
    ASSERT_TRUE(writer.open(path, &error)) << error;
    writer.append({"a\x1f", 1, true});
    ASSERT_TRUE(writer.reset());
    writer.append({"b\x1f", 2, true});
    writer.close();

    WalReplay replay = replay_wal(path);
    ASSERT_EQ(replay.entries.size(), 1u);
    EXPECT_EQ(replay.entries[0].text, "b\x1f");
}

// --- StateStore -------------------------------------------------------------

TEST(StateStoreTest, CreatesPrivateDirectoryAndFiles) {
    TempDir dir;
    std::string state_dir = dir.file("state");
    {
        StateStore store({state_dir});
        store.append_wal({"a\x1f", 1, true});
    }
    struct stat st {};
    ASSERT_EQ(::stat(state_dir.c_str(), &st), 0);
    EXPECT_EQ(st.st_mode & 0777, 0700u) << "state dir must be private: full request text";
    ASSERT_EQ(::stat((state_dir + "/wal.agenp").c_str(), &st), 0);
    EXPECT_EQ(st.st_mode & 0777, 0600u);
    std::remove((state_dir + "/wal.agenp").c_str());
    std::remove((state_dir + "/snapshot.agenp").c_str());
    ::rmdir(state_dir.c_str());
}

TEST(StateStoreTest, SnapshotThenWalRestoreMergesWithWalWinning) {
    TempDir dir;
    {
        StateStore store({dir.path()});
        SnapshotData data = sample_snapshot();
        std::string error;
        ASSERT_TRUE(store.save_snapshot(data, &error)) << error;
        // Post-snapshot inserts: one fresh entry, one re-deciding an entry
        // the snapshot already has (newer verdict must win on restore).
        store.append_wal({std::string("do survey\x1f") + "maxloa(3).", 3, true});
        store.append_wal({sample_snapshot().entries[0].text, 4, false});
    }
    StateStore store(StoreOptions{dir.path()});
    RestoreResult result = store.restore();
    EXPECT_TRUE(result.snapshot_loaded);
    EXPECT_EQ(result.wal_replayed, 2u);
    EXPECT_EQ(result.wal_discarded_bytes, 0u);
    EXPECT_EQ(result.data.model_version, 3u);
    EXPECT_EQ(result.data.policies.size(), 2u);
    // Snapshot entries first, WAL entries after — the cache's
    // restore_entries overwrites duplicates in input order, so WAL wins.
    ASSERT_EQ(result.data.entries.size(), 4u);
    EXPECT_EQ(result.data.entries[3].text, sample_snapshot().entries[0].text);
    EXPECT_EQ(result.data.entries[3].model_version, 4u);

    StoreStatus status = store.status();
    EXPECT_TRUE(status.restored);
    EXPECT_EQ(status.restored_entries, 4u);
    EXPECT_EQ(status.wal_replayed, 2u);
}

TEST(StateStoreTest, SaveSnapshotResetsWal) {
    TempDir dir;
    StateStore store(StoreOptions{dir.path()});
    store.append_wal({"a\x1f", 1, true});
    std::string error;
    ASSERT_TRUE(store.save_snapshot(SnapshotData{}, &error)) << error;
    EXPECT_EQ(store.status().wal_bytes, 0u);
    WalReplay replay = replay_wal(dir.file("wal.agenp"));
    EXPECT_TRUE(replay.entries.empty());
}

TEST(StateStoreTest, RestoreTruncatesTornWalTailOnDisk) {
    TempDir dir;
    {
        StateStore store(StoreOptions{dir.path()});
        store.append_wal({"a\x1f", 1, true});
        store.append_wal({"b\x1f", 1, true});
    }
    std::string wal_path = dir.file("wal.agenp");
    std::string bytes = slurp(wal_path);
    dump(wal_path, bytes.substr(0, bytes.size() - 2));

    StateStore store(StoreOptions{dir.path()});
    RestoreResult result = store.restore();
    EXPECT_FALSE(result.snapshot_loaded);
    EXPECT_EQ(result.wal_replayed, 1u);
    EXPECT_GT(result.wal_discarded_bytes, 0u);
    EXPECT_FALSE(result.warning.empty());

    // The torn tail is gone from disk: new appends extend a clean prefix.
    store.append_wal({"c\x1f", 2, true});
    WalReplay replay = replay_wal(wal_path);
    ASSERT_EQ(replay.entries.size(), 2u);
    EXPECT_EQ(replay.entries[1].text, "c\x1f");
    EXPECT_EQ(replay.discarded_bytes, 0u);
}

TEST(StateStoreTest, CorruptSnapshotFallsBackToWalOnly) {
    TempDir dir;
    {
        StateStore store(StoreOptions{dir.path()});
        std::string error;
        ASSERT_TRUE(store.save_snapshot(sample_snapshot(), &error)) << error;
        store.append_wal({"fresh\x1f", 3, true});
    }
    // Corrupt the snapshot body: restore must refuse it but still replay
    // the WAL, so a damaged snapshot degrades warmth, not correctness.
    std::string snapshot_path = dir.file("snapshot.agenp");
    std::string bytes = slurp(snapshot_path);
    bytes[bytes.size() / 2] ^= 0x01;
    dump(snapshot_path, bytes);

    StateStore store(StoreOptions{dir.path()});
    RestoreResult result = store.restore();
    EXPECT_FALSE(result.snapshot_loaded);
    EXPECT_FALSE(result.warning.empty());
    ASSERT_EQ(result.data.entries.size(), 1u);
    EXPECT_EQ(result.data.entries[0].text, "fresh\x1f");
    EXPECT_EQ(result.data.model_version, 0u);
}

TEST(StateStoreTest, EmptyDirRestoreIsCleanColdStart) {
    TempDir dir;
    StateStore store(StoreOptions{dir.path()});
    RestoreResult result = store.restore();
    EXPECT_FALSE(result.snapshot_loaded);
    EXPECT_EQ(result.data.entries.size(), 0u);
    EXPECT_TRUE(result.warning.empty());
    EXPECT_FALSE(store.status().restored);
}

}  // namespace
}  // namespace agenp::store
