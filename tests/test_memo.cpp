// The grounding memo (asg/memo.hpp): memo-on results must be identical to
// the plain instantiate + ground + solve path, entries must invalidate
// lazily on an epoch (model version) bump, the soundness gate must reject
// annotated heads, and the sharded table must survive concurrent use with
// concurrent epoch bumps (the TSan job runs this binary).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "asg/asg.hpp"
#include "asg/membership.hpp"
#include "asg/memo.hpp"
#include "asp/parser.hpp"
#include "asp/solver.hpp"

namespace agenp::asg {
namespace {

using cfg::tokenize;

const char* kTaskAsg = R"(
    request -> "do" task {
        :- requires(L)@2, maxloa(M), L > M.
    }
    task -> "patrol" { requires(2). }
    task -> "strike" { requires(4). }
)";

const char* kAnBn = R"(
    s -> as bs {
        :- size(N)@1, size(M)@2, N != M.
    }
    as -> "a" as {
        size(N) :- size(M)@2, N = M + 1.
    }
    as -> epsilon {
        size(0).
    }
    bs -> "b" bs {
        size(N) :- size(M)@2, N = M + 1.
    }
    bs -> epsilon {
        size(0).
    }
)";

TEST(MemoGate, DemoStyleGrammarsPass) {
    auto ctx = asp::parse_program("maxloa(3).");
    EXPECT_TRUE(GroundingMemo::memoizable(AnswerSetGrammar::parse(kTaskAsg), ctx));
    EXPECT_TRUE(GroundingMemo::memoizable(AnswerSetGrammar::parse(kAnBn), {}));
}

TEST(MemoGate, AnnotatedHeadRejectsAndFallsBack) {
    // `mark@1.` derives an atom INTO child 1's namespace: the child's
    // fragment was grounded without it, so compositional grounding is
    // unsound and the gate must force the plain path.
    auto g = AnswerSetGrammar::parse(R"(
        s -> t t {
            mark@1.
            :- mark@1, bad@2.
        }
        t -> "x" { local. }
    )");
    EXPECT_FALSE(GroundingMemo::memoizable(g, {}));

    GroundingMemo memo;
    MembershipOptions options;
    options.memo = &memo;
    EXPECT_TRUE(in_language(g, tokenize("x x"), {}, options));
    EXPECT_EQ(memo.stats().gate_fallbacks, 1u);
    EXPECT_EQ(memo.stats().misses, 0u);  // never probed
}

TEST(Memo, ResultsMatchPlainPathAcrossWorkload) {
    auto task = AnswerSetGrammar::parse(kTaskAsg);
    auto anbn = AnswerSetGrammar::parse(kAnBn);
    auto ctx3 = asp::parse_program("maxloa(3).");
    auto ctx5 = asp::parse_program("maxloa(5).");

    GroundingMemo memo;
    MembershipOptions with_memo;
    with_memo.memo = &memo;

    struct Case {
        const AnswerSetGrammar* grammar;
        const asp::Program* context;
        const char* text;
    };
    asp::Program empty;
    std::vector<Case> cases = {
        {&task, &ctx3, "do patrol"}, {&task, &ctx3, "do strike"}, {&task, &ctx5, "do strike"},
        {&task, &ctx3, "do fly"},    {&anbn, &empty, ""},         {&anbn, &empty, "a b"},
        {&anbn, &empty, "a a b b"},  {&anbn, &empty, "a a b"},    {&anbn, &empty, "b a"},
    };
    // Two passes: pass 0 populates the memo (misses), pass 1 serves from
    // it (fragment + verdict hits). Both must agree with the plain path.
    for (int pass = 0; pass < 2; ++pass) {
        for (const auto& c : cases) {
            bool plain = in_language(*c.grammar, tokenize(c.text), *c.context);
            bool memoized = in_language(*c.grammar, tokenize(c.text), *c.context, with_memo);
            EXPECT_EQ(memoized, plain) << "pass " << pass << " text '" << c.text << "'";
        }
    }
    MemoStats stats = memo.stats();
    EXPECT_GT(stats.misses, 0u);
    EXPECT_GT(stats.insertions, 0u);
    EXPECT_GT(stats.hits, 0u);
    EXPECT_GT(stats.sat_hits, 0u);  // pass 1 repeats served by verdict
    EXPECT_EQ(stats.gate_fallbacks, 0u);
}

TEST(Memo, RootProgramMatchesPlainGrounding) {
    // The composed root program must be solver-equivalent to the plain
    // instantiate + ground product for every parse tree.
    auto g = AnswerSetGrammar::parse(kAnBn);
    GroundingMemo memo;
    asp::Program empty_context;  // MemoizedGrounding keeps a reference
    asp::GroundingLimits limits;
    for (const char* text : {"a a a b b b", "a a b", "a b"}) {
        auto trees = cfg::parse_trees(g.grammar(), tokenize(text), {});
        MemoizedGrounding memoized(&memo, g, empty_context, limits);
        ASSERT_TRUE(memoized.usable());
        for (const auto& tree : trees) {
            auto root = memoized.ground_root(tree);
            ASSERT_FALSE(root.verdict.has_value());  // nothing solved yet
            ASSERT_NE(root.program, nullptr);
            asp::SolveResult via_memo = asp::solve(*root.program, {.max_models = 1});
            asp::SolveResult plain = solve_tree(g, tree, {}, {});
            EXPECT_EQ(via_memo.satisfiable(), plain.satisfiable()) << text;
        }
    }
}

TEST(Memo, SecondIdenticalQueryServesVerdictWithoutSolving) {
    auto g = AnswerSetGrammar::parse(kTaskAsg);
    auto ctx = asp::parse_program("maxloa(3).");
    GroundingMemo memo;
    MembershipOptions options;
    options.memo = &memo;

    ASSERT_TRUE(in_language(g, tokenize("do patrol"), ctx, options));
    std::uint64_t sat_hits_before = memo.stats().sat_hits;
    ASSERT_TRUE(in_language(g, tokenize("do patrol"), ctx, options));
    EXPECT_GT(memo.stats().sat_hits, sat_hits_before);
}

TEST(Memo, DistinctContextsDoNotCollide) {
    // Same grammar, same string, different contexts — opposite answers.
    // A memo that ignored the context fingerprint would serve the first
    // context's verdict for the second.
    auto g = AnswerSetGrammar::parse(kTaskAsg);
    auto ctx3 = asp::parse_program("maxloa(3).");
    auto ctx5 = asp::parse_program("maxloa(5).");
    GroundingMemo memo;
    MembershipOptions options;
    options.memo = &memo;
    for (int round = 0; round < 2; ++round) {
        EXPECT_FALSE(in_language(g, tokenize("do strike"), ctx3, options));
        EXPECT_TRUE(in_language(g, tokenize("do strike"), ctx5, options));
    }
}

TEST(Memo, EpochBumpInvalidatesLazily) {
    auto g = AnswerSetGrammar::parse(kTaskAsg);
    auto ctx = asp::parse_program("maxloa(3).");
    GroundingMemo memo;
    MembershipOptions options;
    options.memo = &memo;

    ASSERT_TRUE(in_language(g, tokenize("do patrol"), ctx, options));
    std::uint64_t entries_before = memo.stats().entries;
    ASSERT_GT(entries_before, 0u);

    memo.set_epoch(memo.epoch() + 1);  // model adoption
    // Entries are still resident (lazy invalidation)...
    EXPECT_EQ(memo.stats().entries, entries_before);
    // ...but the next probe under the new epoch erases and re-grounds.
    ASSERT_TRUE(in_language(g, tokenize("do patrol"), ctx, options));
    MemoStats stats = memo.stats();
    EXPECT_GT(stats.invalidations, 0u);
}

TEST(Memo, TinyBudgetEvictsButStaysCorrect) {
    auto g = AnswerSetGrammar::parse(kAnBn);
    GroundingMemo memo({.capacity_bytes = 512, .shards = 1});
    MembershipOptions options;
    options.memo = &memo;
    for (int round = 0; round < 2; ++round) {
        EXPECT_TRUE(in_language(g, tokenize("a a a b b b"), {}, options));
        EXPECT_FALSE(in_language(g, tokenize("a a a b b"), {}, options));
        EXPECT_TRUE(in_language(g, tokenize("a a b b"), {}, options));
    }
    MemoStats stats = memo.stats();
    EXPECT_GT(stats.evictions, 0u);
    EXPECT_LE(stats.bytes, 512u * 1u);  // per-shard budget holds
}

TEST(Memo, ClearEmptiesTheTable) {
    auto g = AnswerSetGrammar::parse(kTaskAsg);
    auto ctx = asp::parse_program("maxloa(3).");
    GroundingMemo memo;
    MembershipOptions options;
    options.memo = &memo;
    ASSERT_TRUE(in_language(g, tokenize("do patrol"), ctx, options));
    ASSERT_GT(memo.stats().entries, 0u);
    memo.clear();
    EXPECT_EQ(memo.stats().entries, 0u);
    EXPECT_EQ(memo.stats().bytes, 0u);
    // Still serves correct answers afterwards.
    EXPECT_TRUE(in_language(g, tokenize("do patrol"), ctx, options));
}

// Concurrency hammer for the TSan job: worker threads share one memo
// across overlapping workloads while another thread bumps the epoch —
// the DecisionService shape (workers decide, update_model bumps).
TEST(Memo, ConcurrentQueriesWithEpochBumpsStayCorrect) {
    auto task = AnswerSetGrammar::parse(kTaskAsg);
    auto anbn = AnswerSetGrammar::parse(kAnBn);
    auto ctx3 = asp::parse_program("maxloa(3).");
    auto ctx5 = asp::parse_program("maxloa(5).");
    GroundingMemo memo({.capacity_bytes = 64 * 1024, .shards = 4});

    constexpr int kWorkers = 4;
    constexpr int kRounds = 40;
    std::atomic<int> wrong{0};
    std::vector<std::thread> threads;
    threads.reserve(kWorkers + 1);
    for (int w = 0; w < kWorkers; ++w) {
        threads.emplace_back([&, w] {
            MembershipOptions options;
            options.memo = &memo;
            for (int i = 0; i < kRounds; ++i) {
                if (in_language(task, tokenize("do strike"), ctx3, options)) ++wrong;
                if (!in_language(task, tokenize("do strike"), ctx5, options)) ++wrong;
                if (!in_language(task, tokenize("do patrol"), ctx3, options)) ++wrong;
                const char* ab = (w + i) % 2 == 0 ? "a a b b" : "a b";
                if (!in_language(anbn, tokenize(ab), {}, options)) ++wrong;
                if (in_language(anbn, tokenize("a b b"), {}, options)) ++wrong;
            }
        });
    }
    std::atomic<bool> stop{false};
    threads.emplace_back([&] {
        std::uint64_t epoch = memo.epoch();
        while (!stop.load(std::memory_order_acquire)) {
            memo.set_epoch(++epoch);
            std::this_thread::yield();
        }
    });
    for (int w = 0; w < kWorkers; ++w) threads[static_cast<std::size_t>(w)].join();
    stop.store(true, std::memory_order_release);
    threads.back().join();
    EXPECT_EQ(wrong.load(), 0);
}

}  // namespace
}  // namespace agenp::asg
