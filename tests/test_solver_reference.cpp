// Differential testing of the answer-set solver.
//
// A brute-force reference implementation enumerates every subset of atoms
// and checks the stable-model definition directly (I is an answer set iff I
// satisfies all constraints and I equals the least model of the reduct
// P^I). The production solver must agree on every program of several
// random families.

#include <gtest/gtest.h>

#include <set>

#include "asp/grounder.hpp"
#include "asp/parser.hpp"
#include "asp/solver.hpp"
#include "util/rng.hpp"

namespace agenp::asp {
namespace {

// All answer sets by brute force. Only for tiny programs (2^n subsets).
std::set<std::vector<AtomId>> reference_answer_sets(const GroundProgram& gp) {
    std::size_t n = gp.atom_count();
    EXPECT_LE(n, 16u) << "reference checker is exponential";
    std::set<std::vector<AtomId>> result;
    for (std::uint32_t bits = 0; bits < (1u << n); ++bits) {
        auto in = [&](AtomId a) { return (bits >> a) & 1u; };

        // Constraints: no satisfied body.
        bool ok = true;
        for (const auto& r : gp.rules()) {
            if (!r.is_constraint()) continue;
            bool body = true;
            for (auto p : r.pos) body &= in(p) != 0;
            for (auto q : r.neg) body &= in(q) == 0;
            if (body) {
                ok = false;
                break;
            }
        }
        if (!ok) continue;

        // Least model of the reduct.
        std::vector<char> lm(n, 0);
        bool changed = true;
        while (changed) {
            changed = false;
            for (const auto& r : gp.rules()) {
                if (r.is_constraint()) continue;
                bool blocked = false;
                for (auto q : r.neg) blocked |= in(q) != 0;
                if (blocked) continue;
                bool body = true;
                for (auto p : r.pos) body &= lm[static_cast<std::size_t>(p)] != 0;
                if (body && !lm[static_cast<std::size_t>(r.head)]) {
                    lm[static_cast<std::size_t>(r.head)] = 1;
                    changed = true;
                }
            }
        }
        bool stable = true;
        for (std::size_t a = 0; a < n; ++a) {
            if ((lm[a] != 0) != (in(static_cast<AtomId>(a)) != 0)) {
                stable = false;
                break;
            }
        }
        if (!stable) continue;

        std::vector<AtomId> model;
        for (std::size_t a = 0; a < n; ++a) {
            if (in(static_cast<AtomId>(a))) model.push_back(static_cast<AtomId>(a));
        }
        result.insert(std::move(model));
    }
    return result;
}

void expect_agreement(const std::string& text) {
    auto gp = ground(parse_program(text));
    auto expected = reference_answer_sets(gp);
    auto got = solve(gp, {.max_models = 0});
    EXPECT_FALSE(got.exhausted);
    std::set<std::vector<AtomId>> actual(got.models.begin(), got.models.end());
    EXPECT_EQ(actual, expected) << "program:\n" << text << "ground:\n" << gp.to_string();
}

TEST(SolverReference, HandPickedPrograms) {
    expect_agreement("p. q :- p. r :- q, not s.");
    expect_agreement("a :- not b. b :- not a.");
    expect_agreement("a :- not b. b :- not a. :- a.");
    expect_agreement("p :- not p.");
    expect_agreement("p :- q. q :- p.");
    expect_agreement("p :- q. q :- p. q :- r. r :- not s.");
    expect_agreement("x :- not y, not z. y :- not x, not z. z :- not x, not y.");
    expect_agreement(":- not p. p :- not q. q :- not p.");
    expect_agreement("a. b :- a, not c. c :- a, not b. :- b, c.");
}

// Random program family: n atoms, m rules with random heads, random bodies
// of up to 3 literals with random signs, ~15% constraints.
std::string random_program(util::Rng& rng, int atoms, int rules) {
    auto atom = [&](int i) { return "a" + std::to_string(i); };
    std::string text;
    for (int r = 0; r < rules; ++r) {
        std::string rule;
        bool constraint = rng.bernoulli(0.15);
        if (!constraint) rule += atom(static_cast<int>(rng.uniform(0, atoms - 1)));
        auto body_len = rng.uniform(constraint ? 1 : 0, 3);
        if (body_len > 0) rule += rule.empty() ? ":- " : " :- ";
        for (int b = 0; b < body_len; ++b) {
            if (b > 0) rule += ", ";
            if (rng.bernoulli(0.4)) rule += "not ";
            rule += atom(static_cast<int>(rng.uniform(0, atoms - 1)));
        }
        text += rule + ".\n";
    }
    return text;
}

class RandomProgramSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomProgramSweep, SolverMatchesReference) {
    util::Rng rng(GetParam());
    for (int trial = 0; trial < 40; ++trial) {
        int atoms = static_cast<int>(rng.uniform(2, 8));
        int rules = static_cast<int>(rng.uniform(1, 12));
        auto text = random_program(rng, atoms, rules);
        SCOPED_TRACE(text);
        expect_agreement(text);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// Random positive-loop-heavy family (stresses the stability check).
class LoopProgramSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LoopProgramSweep, SolverMatchesReference) {
    util::Rng rng(GetParam() * 977);
    for (int trial = 0; trial < 25; ++trial) {
        int atoms = static_cast<int>(rng.uniform(3, 7));
        std::string text;
        // A ring of positive dependencies plus random negative escapes.
        for (int i = 0; i < atoms; ++i) {
            text += "a" + std::to_string(i) + " :- a" + std::to_string((i + 1) % atoms) + ".\n";
        }
        int extras = static_cast<int>(rng.uniform(1, 4));
        for (int e = 0; e < extras; ++e) {
            int from = static_cast<int>(rng.uniform(0, atoms - 1));
            int to = static_cast<int>(rng.uniform(0, atoms - 1));
            text += "a" + std::to_string(from) + " :- not a" + std::to_string(to) + ".\n";
        }
        SCOPED_TRACE(text);
        expect_agreement(text);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LoopProgramSweep, ::testing::Values(11, 12, 13, 14, 15));

}  // namespace
}  // namespace agenp::asp
