#include <gtest/gtest.h>

#include "asp/parser.hpp"
#include "explain/attribution.hpp"
#include "explain/counterfactual.hpp"
#include "xacml/learning_bridge.hpp"

namespace agenp::explain {
namespace {

using cfg::tokenize;

const char* kTaskInitial = R"(
    request -> "do" task
    task -> "patrol" { requires(2). }
    task -> "strike" { requires(4). }
)";

ilp::Hypothesis loa_hypothesis() {
    return {{asp::parse_rule(":- requires(L)@2, maxloa(M), L > M."), 0},
            {asp::parse_rule(":- requires(L)@2, curfew, L > 1."), 0}};
}

TEST(Attribution, AcceptedRequestHasNoAttribution) {
    auto g = asg::AnswerSetGrammar::parse(kTaskInitial);
    auto attribution = attribute_rejection(g, loa_hypothesis(), tokenize("do patrol"),
                                           asp::parse_program("maxloa(3)."));
    EXPECT_FALSE(attribution.rejected());
    EXPECT_TRUE(attribution.decisive.empty());
}

TEST(Attribution, SingleRuleRejectionIsDecisive) {
    auto g = asg::AnswerSetGrammar::parse(kTaskInitial);
    // maxloa kills strike; no curfew, so rule 0 is solely responsible.
    auto attribution = attribute_rejection(g, loa_hypothesis(), tokenize("do strike"),
                                           asp::parse_program("maxloa(3)."));
    ASSERT_TRUE(attribution.rejected());
    EXPECT_EQ(attribution.decisive, (std::vector<std::size_t>{0}));
    EXPECT_EQ(attribution.contributing, (std::vector<std::size_t>{0}));
}

TEST(Attribution, OverdeterminedRejectionHasNoDecisiveRule) {
    auto g = asg::AnswerSetGrammar::parse(kTaskInitial);
    // Both the LOA constraint and the curfew fire: removing either alone
    // does not flip the decision.
    auto attribution = attribute_rejection(g, loa_hypothesis(), tokenize("do strike"),
                                           asp::parse_program("maxloa(3). curfew."));
    ASSERT_TRUE(attribution.rejected());
    EXPECT_TRUE(attribution.decisive.empty());
    EXPECT_EQ(attribution.contributing.size(), 2u);
}

TEST(Attribution, RenderedTextNamesTheRules) {
    auto g = asg::AnswerSetGrammar::parse(kTaskInitial);
    auto h = loa_hypothesis();
    auto attribution =
        attribute_rejection(g, h, tokenize("do strike"), asp::parse_program("maxloa(3)."));
    auto text = render_attribution(attribution, h);
    EXPECT_NE(text.find("rejected"), std::string::npos);
    EXPECT_NE(text.find("maxloa"), std::string::npos);
    EXPECT_NE(text.find("decisive"), std::string::npos);
}

TEST(Attribution, CfgLevelRejectionAttributesNothingDecisive) {
    auto g = asg::AnswerSetGrammar::parse(kTaskInitial);
    auto h = loa_hypothesis();
    auto attribution =
        attribute_rejection(g, h, tokenize("do fly"), asp::parse_program("maxloa(9)."));
    // Not in the CFG at all: rejection, but no rule is decisive.
    EXPECT_TRUE(attribution.decisive.empty());
    EXPECT_TRUE(attribution.rejected());
}

// --- counterfactuals over a hand-written XACML policy ---

xacml::XacmlPolicy deny_early_deletes(const xacml::Schema& s) {
    xacml::XacmlPolicy p;
    p.alg = xacml::CombiningAlg::DenyOverrides;
    xacml::XacmlRule deny;
    deny.effect = xacml::Effect::Deny;
    deny.target.all_of.push_back({static_cast<std::size_t>(s.index_of("action")),
                                  xacml::Match::Op::Eq,
                                  xacml::AttributeValue::of(std::string("delete"))});
    deny.target.all_of.push_back({static_cast<std::size_t>(s.index_of("hour")),
                                  xacml::Match::Op::Lt, xacml::AttributeValue::of(2)});
    xacml::XacmlRule permit;
    permit.effect = xacml::Effect::Permit;
    p.rules = {deny, permit};
    return p;
}

xacml::Request request_of(const xacml::Schema& s, std::vector<std::string> cats, std::int64_t hour) {
    xacml::Request r;
    std::size_t ci = 0;
    for (const auto& def : s.attributes) {
        if (def.numeric) {
            r.values.push_back(xacml::AttributeValue::of(hour));
        } else {
            r.values.push_back(xacml::AttributeValue::of(cats[ci++]));
        }
    }
    return r;
}

TEST(Counterfactual, FindsMinimalSingleAttributeFlip) {
    auto s = xacml::healthcare_schema();
    auto p = deny_early_deletes(s);
    auto denied = request_of(s, {"doctor", "er", "delete", "record"}, 1);
    auto decide = [&](const xacml::Request& r) { return evaluate(p, r) == xacml::Decision::Permit; };
    ASSERT_FALSE(decide(denied));
    auto cfs = find_counterfactuals(s, denied, decide);
    ASSERT_FALSE(cfs.empty());
    // Minimal distance is 1: change the hour or the action.
    for (const auto& cf : cfs) EXPECT_EQ(cf.distance(), 1u);
}

TEST(Counterfactual, RespectsMaxDistance) {
    auto s = xacml::healthcare_schema();
    // Policy denying everything: no counterfactual exists at all.
    xacml::XacmlPolicy p;
    p.alg = xacml::CombiningAlg::DenyOverrides;
    xacml::XacmlRule deny_all;
    deny_all.effect = xacml::Effect::Deny;
    p.rules = {deny_all};
    auto denied = request_of(s, {"doctor", "er", "read", "record"}, 1);
    auto decide = [&](const xacml::Request& r) { return evaluate(p, r) == xacml::Decision::Permit; };
    EXPECT_TRUE(find_counterfactuals(s, denied, decide).empty());
}

TEST(Counterfactual, WorksInBothDirections) {
    auto s = xacml::healthcare_schema();
    auto p = deny_early_deletes(s);
    auto permitted = request_of(s, {"doctor", "er", "delete", "record"}, 3);
    auto decide = [&](const xacml::Request& r) { return evaluate(p, r) == xacml::Decision::Permit; };
    ASSERT_TRUE(decide(permitted));
    auto cfs = find_counterfactuals(s, permitted, decide);
    ASSERT_FALSE(cfs.empty());
    // Flipping hour to < 2 denies.
    EXPECT_EQ(cfs[0].distance(), 1u);
}

TEST(Counterfactual, RenderedTextIsWachterStyle) {
    auto s = xacml::healthcare_schema();
    auto p = deny_early_deletes(s);
    auto denied = request_of(s, {"doctor", "er", "delete", "record"}, 1);
    auto decide = [&](const xacml::Request& r) { return evaluate(p, r) == xacml::Decision::Permit; };
    auto cfs = find_counterfactuals(s, denied, decide);
    ASSERT_FALSE(cfs.empty());
    auto text = render_counterfactual(s, denied, cfs[0], false);
    EXPECT_NE(text.find("The request was denied."), std::string::npos);
    EXPECT_NE(text.find("would have been permitted"), std::string::npos);
    EXPECT_NE(text.find("instead of"), std::string::npos);
}

TEST(Counterfactual, ExplainsLearnedModelsToo) {
    // End-to-end: learn a policy, then explain one of its denials.
    auto s = xacml::healthcare_schema();
    auto truth = deny_early_deletes(s);
    auto bridge = xacml::make_bridge(s);
    util::Rng rng(31);
    auto log = evaluate_batch(truth, xacml::sample_requests(s, 250, rng));
    auto result = xacml::learn_policy(bridge, log);
    ASSERT_TRUE(result.found) << result.failure_reason;
    auto learned = bridge.grammar.with_rules(result.hypothesis);

    auto denied = request_of(s, {"nurse", "er", "delete", "report"}, 0);
    auto decide = [&](const xacml::Request& r) {
        return asg::in_language(learned, xacml::request_tokens(s, r), {});
    };
    ASSERT_FALSE(decide(denied));
    auto cfs = find_counterfactuals(s, denied, decide);
    ASSERT_FALSE(cfs.empty());
    EXPECT_EQ(cfs[0].distance(), 1u);
}

}  // namespace
}  // namespace agenp::explain
