#include <gtest/gtest.h>

#include "agenp/coalition.hpp"
#include "agenp/pbms.hpp"
#include "asp/parser.hpp"
#include "xacml/generator.hpp"

namespace agenp::framework {
namespace {

using cfg::tokenize;

const char* kTaskInitial = R"(
    request -> "do" task
    task -> "patrol" { requires(2). }
    task -> "strike" { requires(4). }
    task -> "observe" { requires(1). }
)";

ilp::HypothesisSpace task_space() {
    ilp::ModeBias bias;
    bias.body.push_back(ilp::ModeAtom("requires", {ilp::ArgSpec::var("lvl")}, 2));
    bias.body.push_back(ilp::ModeAtom("maxloa", {ilp::ArgSpec::var("lvl")}));
    bias.comparisons.push_back(ilp::ComparisonMode(
        "lvl", {asp::Comparison::Op::Gt}, /*var_vs_const=*/false, /*var_vs_var=*/true));
    bias.max_body_atoms = 2;
    bias.max_vars = 2;
    return ilp::generate_space(bias, {0});
}

std::vector<ilp::Example> loa_examples(bool positive) {
    auto ctx = [](int m) { return asp::parse_program("maxloa(" + std::to_string(m) + ")."); };
    std::vector<ilp::Example> out;
    if (positive) {
        out.emplace_back(tokenize("do patrol"), ctx(3));
        out.emplace_back(tokenize("do strike"), ctx(5));
        out.emplace_back(tokenize("do observe"), ctx(1));
    } else {
        out.emplace_back(tokenize("do strike"), ctx(3));
        out.emplace_back(tokenize("do patrol"), ctx(1));
    }
    return out;
}

AutonomousManagedSystem make_ams(const std::string& name,
                                 DecisionStrategy strategy = DecisionStrategy::Membership) {
    AmsOptions options;
    options.strategy = strategy;
    return AutonomousManagedSystem(name, asg::AnswerSetGrammar::parse(kTaskInitial), task_space(),
                                   options);
}

TEST(Pip, GathersFromAllSources) {
    PolicyInformationPoint pip;
    pip.add_source("weather", [] { return asp::parse_program("weather(rain)."); });
    pip.add_source("loa", [] { return asp::parse_program("maxloa(3)."); });
    auto ctx = pip.gather();
    EXPECT_EQ(ctx.size(), 2u);
    pip.remove_source("weather");
    EXPECT_EQ(pip.gather().size(), 1u);
}

TEST(ContextRepo, StoresAndFinds) {
    ContextRepository repo;
    repo.store("mission-a", asp::parse_program("phase(planning)."));
    ASSERT_NE(repo.find("mission-a"), nullptr);
    EXPECT_EQ(repo.find("mission-a")->size(), 1u);
    EXPECT_EQ(repo.find("nope"), nullptr);
}

TEST(PolicyRepo, ReplaceAndDedupe) {
    PolicyRepository repo;
    repo.replace({tokenize("do patrol"), tokenize("do patrol"), tokenize("do observe")}, "prep", 1);
    EXPECT_EQ(repo.size(), 2u);
    EXPECT_TRUE(repo.contains(tokenize("do patrol")));
    EXPECT_FALSE(repo.contains(tokenize("do strike")));
    EXPECT_EQ(repo.version(), 1u);
}

TEST(RepresentationsRepo, VersionsAccumulate) {
    RepresentationsRepository repo;
    EXPECT_TRUE(repo.empty());
    auto g = asg::AnswerSetGrammar::parse(kTaskInitial);
    EXPECT_EQ(repo.store(g, "v1"), 1u);
    EXPECT_EQ(repo.store(g, "v2"), 2u);
    EXPECT_EQ(repo.latest_version(), 2u);
    EXPECT_EQ(repo.note_for(2), "v2");
    EXPECT_NE(repo.at_version(1), nullptr);
    EXPECT_EQ(repo.at_version(3), nullptr);
}

TEST(PolicyRepo, RestoreReloadsPersistedSetVerbatim) {
    PolicyRepository repo;
    repo.replace({tokenize("do observe")}, "prep", 9);
    // A warm restart hands back the recorded set: per-policy provenance
    // and version stamps survive, and the repository-level version and
    // truncated flag come back as recorded, not re-stamped.
    repo.restore({{tokenize("do patrol"), "prep", 3}, {tokenize("do survey"), "shared:ams2", 2}},
                 3, true);
    EXPECT_EQ(repo.size(), 2u);
    EXPECT_EQ(repo.version(), 3u);
    EXPECT_TRUE(repo.truncated());
    EXPECT_TRUE(repo.contains(tokenize("do patrol")));
    EXPECT_FALSE(repo.contains(tokenize("do observe")));  // pre-restore set gone
    EXPECT_EQ(repo.all()[1].source, "shared:ams2");
    EXPECT_EQ(repo.all()[1].version, 2u);
}

TEST(RepresentationsRepo, RestoreReseedsHistoryAtPersistedVersion) {
    RepresentationsRepository repo;
    auto g = asg::AnswerSetGrammar::parse(kTaskInitial);
    // Only the latest model was persisted; the history restarts at exactly
    // the recorded version and earlier versions resolve to nothing.
    repo.restore(g, 5, "restored note");
    EXPECT_FALSE(repo.empty());
    EXPECT_EQ(repo.latest_version(), 5u);
    EXPECT_EQ(repo.note_for(5), "restored note");
    EXPECT_NE(repo.at_version(5), nullptr);
    EXPECT_EQ(repo.at_version(4), nullptr);
    EXPECT_EQ(repo.at_version(6), nullptr);
    // Learning continues from the persisted number.
    EXPECT_EQ(repo.store(g, "post-restart"), 6u);
    EXPECT_EQ(repo.note_for(6), "post-restart");
    EXPECT_NE(repo.at_version(6), nullptr);
    // Version 0 is not a valid restore point.
    EXPECT_THROW(repo.restore(g, 0, "bad"), std::logic_error);
}

TEST(Prep, MaterializesContextDependentLanguage) {
    auto g = asg::AnswerSetGrammar::parse(kTaskInitial)
                 .with_rules({{asp::parse_rule(":- requires(L)@2, maxloa(M), L > M."), 0}});
    PolicyRepository repo;
    PolicyRefinementPoint prep;
    auto report = prep.refresh(g, asp::parse_program("maxloa(3)."), repo, 7);
    EXPECT_EQ(report.generated, 2u);  // patrol + observe
    EXPECT_TRUE(repo.contains(tokenize("do patrol")));
    EXPECT_FALSE(repo.contains(tokenize("do strike")));
    EXPECT_EQ(repo.version(), 7u);
}

TEST(Pdp, RepositoryStrategyConsultsStoredPolicies) {
    PolicyRepository repo;
    repo.replace({tokenize("do patrol")}, "prep", 1);
    PolicyDecisionPoint pdp(DecisionStrategy::Repository);
    auto g = asg::AnswerSetGrammar::parse(kTaskInitial);
    EXPECT_TRUE(pdp.decide(tokenize("do patrol"), {}, g, repo));
    EXPECT_FALSE(pdp.decide(tokenize("do strike"), {}, g, repo));
}

TEST(Monitor, AccuracyOverFeedback) {
    DecisionMonitor monitor;
    auto i0 = monitor.record({tokenize("a"), {}, true, 1, std::nullopt});
    auto i1 = monitor.record({tokenize("b"), {}, false, 1, std::nullopt});
    EXPECT_FALSE(monitor.observed_accuracy().has_value());
    EXPECT_TRUE(monitor.attach_feedback(i0, true));   // correct
    EXPECT_TRUE(monitor.attach_feedback(i1, true));   // wrong
    ASSERT_TRUE(monitor.observed_accuracy().has_value());
    EXPECT_DOUBLE_EQ(*monitor.observed_accuracy(), 0.5);
    EXPECT_EQ(monitor.feedback_records().size(), 2u);
}

TEST(Monitor, RingBufferCapsHistoryAndKeepsSequenceNumbers) {
    DecisionMonitor monitor(4);
    std::vector<std::size_t> indices;
    for (int i = 0; i < 10; ++i) {
        indices.push_back(monitor.record({tokenize("r" + std::to_string(i)), {}, true, 1, std::nullopt}));
    }
    // Indices are monotone sequence numbers, not slot positions.
    for (std::size_t i = 0; i < indices.size(); ++i) EXPECT_EQ(indices[i], i);
    EXPECT_EQ(monitor.history().size(), 4u);
    EXPECT_EQ(monitor.total_recorded(), 10u);
    EXPECT_EQ(monitor.first_index(), 6u);
    // Only the last four records survive.
    EXPECT_EQ(cfg::detokenize(monitor.history().front().request), "r6");
    EXPECT_EQ(cfg::detokenize(monitor.history().back().request), "r9");
    // Audit labels use the surviving sequence numbers.
    auto text = monitor.render_audit();
    EXPECT_EQ(text.find("#5 "), std::string::npos);
    EXPECT_NE(text.find("#6 r6 -> Permit"), std::string::npos);
    EXPECT_NE(text.find("#9 r9 -> Permit"), std::string::npos);
}

TEST(Monitor, AttachFeedbackIsBoundsChecked) {
    DecisionMonitor monitor(2);
    auto i0 = monitor.record({tokenize("a"), {}, true, 1, std::nullopt});
    auto i1 = monitor.record({tokenize("b"), {}, true, 1, std::nullopt});
    auto i2 = monitor.record({tokenize("c"), {}, true, 1, std::nullopt});  // evicts i0
    EXPECT_FALSE(monitor.attach_feedback(i0, true));   // evicted
    EXPECT_FALSE(monitor.attach_feedback(99, true));   // never issued
    EXPECT_TRUE(monitor.attach_feedback(i1, true));
    EXPECT_TRUE(monitor.attach_feedback(i2, false));
    EXPECT_EQ(monitor.feedback_records().size(), 2u);
    monitor.clear();
    // Cleared indices stay dead rather than aliasing new records.
    EXPECT_FALSE(monitor.attach_feedback(i2, true));
    auto i3 = monitor.record({tokenize("d"), {}, true, 1, std::nullopt});
    EXPECT_GT(i3, i2);
    EXPECT_TRUE(monitor.attach_feedback(i3, true));
}

TEST(Pdp, RepositoryStrategyFallsBackToMembershipWhenTruncated) {
    auto g = asg::AnswerSetGrammar::parse(kTaskInitial);
    PolicyRepository repo;
    repo.replace({tokenize("do patrol")}, "prep", 1);
    PolicyDecisionPoint pdp(DecisionStrategy::Repository);

    // Complete repository: absence is an authoritative Deny, even for a
    // string the grammar accepts.
    EXPECT_FALSE(pdp.decide(tokenize("do observe"), {}, g, repo));

    // Truncated repository: absence is inconclusive, so the PDP consults
    // the model. "do observe" is in the language; "do fly" is not.
    repo.set_truncated(true);
    EXPECT_TRUE(pdp.decide(tokenize("do patrol"), {}, g, repo));   // still served from the repo
    EXPECT_TRUE(pdp.decide(tokenize("do observe"), {}, g, repo));  // membership fallback
    EXPECT_FALSE(pdp.decide(tokenize("do fly"), {}, g, repo));

    // A full refresh clears the flag.
    repo.replace({tokenize("do patrol")}, "prep", 2);
    EXPECT_FALSE(repo.truncated());
    EXPECT_FALSE(pdp.decide(tokenize("do observe"), {}, g, repo));
}

TEST(Prep, TruncatedRefreshMarksRepository) {
    auto g = asg::AnswerSetGrammar::parse(kTaskInitial);
    PolicyRepository repo;
    PolicyRefinementPoint full_prep;
    full_prep.refresh(g, {}, repo, 1);
    EXPECT_FALSE(repo.truncated());
    EXPECT_EQ(repo.size(), 3u);

    PrepOptions tight;
    tight.language.enumeration.max_strings = 1;
    PolicyRefinementPoint tight_prep(tight);
    auto report = tight_prep.refresh(g, {}, repo, 2);
    EXPECT_TRUE(report.truncated);
    EXPECT_TRUE(repo.truncated());
    EXPECT_EQ(repo.size(), 1u);
}

TEST(Pcp, DetectsConflictRedundancyIrrelevanceIncompleteness) {
    auto s = xacml::healthcare_schema();
    xacml::XacmlPolicy p;
    p.alg = xacml::CombiningAlg::DenyOverrides;
    xacml::XacmlRule deny_guest;
    deny_guest.id = "deny-guest";
    deny_guest.effect = xacml::Effect::Deny;
    deny_guest.target.all_of.push_back(
        {0, xacml::Match::Op::Eq, xacml::AttributeValue::of(std::string("guest"))});
    xacml::XacmlRule permit_guest;  // conflicts with deny_guest
    permit_guest.id = "permit-guest";
    permit_guest.effect = xacml::Effect::Permit;
    permit_guest.target.all_of.push_back(
        {0, xacml::Match::Op::Eq, xacml::AttributeValue::of(std::string("guest"))});
    xacml::XacmlRule deny_guest_again = deny_guest;  // redundant
    deny_guest_again.id = "deny-guest-2";
    xacml::XacmlRule impossible;  // irrelevant: hour > 99 never matches
    impossible.id = "never";
    impossible.effect = xacml::Effect::Deny;
    impossible.target.all_of.push_back(
        {static_cast<std::size_t>(s.index_of("hour")), xacml::Match::Op::Gt,
         xacml::AttributeValue::of(99)});
    p.rules = {deny_guest, permit_guest, deny_guest_again, impossible};
    // No catch-all: non-guest requests are uncovered.

    auto universe = xacml::enumerate_requests(s);
    auto report = PolicyCheckingPoint::assess(p, universe);
    EXPECT_FALSE(report.consistent());
    EXPECT_FALSE(report.minimal());
    EXPECT_FALSE(report.relevant());
    EXPECT_FALSE(report.complete());
    EXPECT_EQ(report.irrelevant_rules, (std::vector<std::size_t>{3}));
    auto text = report.to_string();
    EXPECT_NE(text.find("conflict"), std::string::npos);
}

TEST(Pcp, CleanPolicyPassesAllMetrics) {
    auto s = xacml::healthcare_schema();
    xacml::XacmlPolicy p;
    p.alg = xacml::CombiningAlg::DenyOverrides;
    xacml::XacmlRule deny_guest;
    deny_guest.effect = xacml::Effect::Deny;
    deny_guest.target.all_of.push_back(
        {0, xacml::Match::Op::Eq, xacml::AttributeValue::of(std::string("guest"))});
    xacml::XacmlRule permit_rest;
    permit_rest.effect = xacml::Effect::Permit;
    permit_rest.target.all_of.push_back(
        {0, xacml::Match::Op::Ne, xacml::AttributeValue::of(std::string("guest"))});
    p.rules = {deny_guest, permit_rest};
    auto report = PolicyCheckingPoint::assess(p, xacml::enumerate_requests(s));
    EXPECT_TRUE(report.consistent());
    EXPECT_TRUE(report.relevant());
    EXPECT_TRUE(report.minimal());
    EXPECT_TRUE(report.complete());
}

TEST(Pcp, EnforceabilityFlagsUnobservableAttributes) {
    auto s = xacml::healthcare_schema();
    xacml::XacmlPolicy p;
    xacml::XacmlRule r;
    r.effect = xacml::Effect::Deny;
    r.target.all_of.push_back({static_cast<std::size_t>(s.index_of("hour")), xacml::Match::Op::Lt,
                               xacml::AttributeValue::of(2)});
    p.rules = {r};
    auto ok = PolicyCheckingPoint::assess_enforceability(p, {0, 1, 2, 3, 4});
    EXPECT_TRUE(ok.enforceable());
    auto missing_clock = PolicyCheckingPoint::assess_enforceability(p, {0, 1, 2, 3});
    EXPECT_FALSE(missing_clock.enforceable());
    EXPECT_EQ(missing_clock.unenforceable_rules, (std::vector<std::size_t>{0}));
}

TEST(Pcp, RiskTradesExposureAgainstBurden) {
    auto s = xacml::healthcare_schema();
    auto universe = xacml::enumerate_requests(s);

    xacml::XacmlPolicy permit_all;
    permit_all.alg = xacml::CombiningAlg::DenyOverrides;
    xacml::XacmlRule p;
    p.effect = xacml::Effect::Permit;
    permit_all.rules = {p};

    xacml::XacmlPolicy deny_all = permit_all;
    deny_all.rules[0].effect = xacml::Effect::Deny;

    auto open = framework::PolicyCheckingPoint::assess_risk(permit_all, universe);
    auto closed = framework::PolicyCheckingPoint::assess_risk(deny_all, universe);
    EXPECT_DOUBLE_EQ(open.exposure_ratio(), 1.0);
    EXPECT_DOUBLE_EQ(open.burden_ratio(), 0.0);
    EXPECT_DOUBLE_EQ(closed.exposure_ratio(), 0.0);
    EXPECT_DOUBLE_EQ(closed.burden_ratio(), 1.0);
}

TEST(Pcp, RiskModelWeightsRequests) {
    auto s = xacml::healthcare_schema();
    auto universe = xacml::enumerate_requests(s);
    // Deletes are 10x as dangerous to permit.
    framework::PolicyCheckingPoint::RiskModel model;
    auto action_index = static_cast<std::size_t>(s.index_of("action"));
    model.exposure = [action_index](const xacml::Request& r) {
        return r.values[action_index].text == "delete" ? 10.0 : 1.0;
    };

    // Policy A permits everything; policy B denies deletes.
    xacml::XacmlPolicy permit_all;
    permit_all.alg = xacml::CombiningAlg::DenyOverrides;
    xacml::XacmlRule p;
    p.effect = xacml::Effect::Permit;
    permit_all.rules = {p};

    xacml::XacmlPolicy no_deletes = permit_all;
    xacml::XacmlRule deny;
    deny.effect = xacml::Effect::Deny;
    deny.target.all_of.push_back(
        {action_index, xacml::Match::Op::Eq, xacml::AttributeValue::of(std::string("delete"))});
    no_deletes.rules.insert(no_deletes.rules.begin(), deny);

    auto risky = framework::PolicyCheckingPoint::assess_risk(permit_all, universe, model);
    auto safer = framework::PolicyCheckingPoint::assess_risk(no_deletes, universe, model);
    EXPECT_LT(safer.exposure_ratio(), risky.exposure_ratio());
    EXPECT_GT(safer.burden_ratio(), risky.burden_ratio());
    // Deletes are 1/3 of requests but 10/12 of the exposure mass.
    EXPECT_LT(safer.exposure_ratio(), 0.2);
}

TEST(Pcp, ViolationDetectorFindsForbiddenAcceptance) {
    auto g = asg::AnswerSetGrammar::parse(kTaskInitial);
    std::vector<ilp::Example> forbidden;
    forbidden.emplace_back(tokenize("do strike"), asp::parse_program("maxloa(1)."));
    auto report = PolicyCheckingPoint::detect_violations(g, forbidden);
    EXPECT_FALSE(report.valid());  // unconstrained grammar accepts everything

    auto constrained =
        g.with_rules({{asp::parse_rule(":- requires(L)@2, maxloa(M), L > M."), 0}});
    EXPECT_TRUE(PolicyCheckingPoint::detect_violations(constrained, forbidden).valid());
}

TEST(Ams, BootstrapLearnsAndServesDecisions) {
    auto ams = make_ams("alpha");
    ams.pip().add_source("loa", [] { return asp::parse_program("maxloa(3)."); });
    auto outcome = ams.learn_model(loa_examples(true), loa_examples(false));
    ASSERT_TRUE(outcome.adapted) << outcome.reason;
    EXPECT_EQ(ams.model_version(), 1u);

    auto [patrol_ok, i0] = ams.handle_request(tokenize("do patrol"));
    auto [strike_ok, i1] = ams.handle_request(tokenize("do strike"));
    (void)i0;
    (void)i1;
    EXPECT_TRUE(patrol_ok);
    EXPECT_FALSE(strike_ok);
    EXPECT_EQ(ams.monitor().history().size(), 2u);
}

TEST(Ams, RepositoryStrategyRefreshesOnAdoption) {
    auto ams = make_ams("beta", DecisionStrategy::Repository);
    ams.pip().add_source("loa", [] { return asp::parse_program("maxloa(3)."); });
    ASSERT_TRUE(ams.learn_model(loa_examples(true), loa_examples(false)).adapted);
    EXPECT_GT(ams.policies().size(), 0u);
    auto [patrol_ok, a] = ams.handle_request(tokenize("do patrol"));
    auto [strike_ok, b] = ams.handle_request(tokenize("do strike"));
    (void)a;
    (void)b;
    EXPECT_TRUE(patrol_ok);
    EXPECT_FALSE(strike_ok);
}

TEST(Ams, PepEffectorObservesEnforcement) {
    auto ams = make_ams("gamma");
    ams.pip().add_source("loa", [] { return asp::parse_program("maxloa(3)."); });
    std::vector<std::pair<std::string, bool>> actions;
    ams.pep().set_effector([&](const cfg::TokenString& req, bool permitted) {
        actions.emplace_back(cfg::detokenize(req), permitted);
    });
    ams.handle_request(tokenize("do patrol"));
    ASSERT_EQ(actions.size(), 1u);
    EXPECT_EQ(actions[0].first, "do patrol");
}

TEST(Ams, MonitorDrivenAdaptationFixesBadModel) {
    auto ams = make_ams("delta");
    ams.pip().add_source("loa", [] { return asp::parse_program("maxloa(3)."); });
    // No learned model yet: the initial (unconstrained) GPM permits strikes.
    auto [strike_ok, idx] = ams.handle_request(tokenize("do strike"));
    EXPECT_TRUE(strike_ok);
    EXPECT_TRUE(ams.give_feedback(idx, false));  // operator: that was wrong
    // More feedback to cross min_feedback.
    for (const auto& [request, should] :
         std::vector<std::pair<std::string, bool>>{{"do patrol", true}, {"do observe", true},
                                                   {"do strike", false}}) {
        auto [ok, i] = ams.handle_request(tokenize(request));
        (void)ok;
        EXPECT_TRUE(ams.give_feedback(i, should));
    }
    auto outcome = ams.adapt();
    EXPECT_TRUE(outcome.triggered);
    ASSERT_TRUE(outcome.adapted) << outcome.reason;
    auto [strike_after, j] = ams.handle_request(tokenize("do strike"));
    (void)j;
    EXPECT_FALSE(strike_after);
}

TEST(Ams, AdaptationSkippedWhenAccurate) {
    auto ams = make_ams("eps");
    ams.pip().add_source("loa", [] { return asp::parse_program("maxloa(3)."); });
    ASSERT_TRUE(ams.learn_model(loa_examples(true), loa_examples(false)).adapted);
    for (const auto& [request, should] :
         std::vector<std::pair<std::string, bool>>{{"do patrol", true}, {"do strike", false},
                                                   {"do observe", true}, {"do patrol", true}}) {
        auto [ok, i] = ams.handle_request(tokenize(request));
        EXPECT_EQ(ok, should);
        EXPECT_TRUE(ams.give_feedback(i, should));
    }
    auto outcome = ams.adapt();
    EXPECT_FALSE(outcome.triggered);
    EXPECT_FALSE(outcome.adapted);
}

TEST(Ams, ForbiddenStringsBlockAdoption) {
    AmsOptions options;
    options.adaptation.forbidden.emplace_back(tokenize("do strike"),
                                              asp::parse_program("maxloa(9)."));
    AutonomousManagedSystem ams("zeta", asg::AnswerSetGrammar::parse(kTaskInitial), task_space(),
                                options);
    // These examples teach nothing about strikes under maxloa(9), so the
    // minimal hypothesis still accepts the forbidden string -> rejected.
    std::vector<ilp::Example> pos, neg;
    pos.emplace_back(tokenize("do patrol"), asp::parse_program("maxloa(3)."));
    auto outcome = ams.learn_model(pos, neg);
    EXPECT_FALSE(outcome.adapted);
    EXPECT_NE(outcome.reason.find("forbidden"), std::string::npos);
}

TEST(Padap, SimilarityCacheSkipsRelearning) {
    AdaptationOptions options;
    options.use_similarity_cache = true;
    PolicyAdaptationPoint padap(asg::AnswerSetGrammar::parse(kTaskInitial), task_space(), options);
    RepresentationsRepository repo;

    // Contexts share the weather fact, so the cache's Jaccard similarity
    // clears the reuse gate even when the LOA ceiling differs.
    auto ctx = [](int m) {
        return asp::parse_program("maxloa(" + std::to_string(m) + "). weather(clear).");
    };
    std::vector<ilp::Example> pos1 = {{tokenize("do patrol"), ctx(3)},
                                      {tokenize("do observe"), ctx(3)}};
    std::vector<ilp::Example> neg1 = {{tokenize("do strike"), ctx(3)}};
    auto first = padap.adapt_from_examples(pos1, neg1, repo, "ctx3");
    ASSERT_TRUE(first.adapted) << first.reason;
    EXPECT_FALSE(first.reused);

    // A shifted ceiling: the same LOA rule separates the new examples, so
    // the cached hypothesis is reused without an inductive search.
    std::vector<ilp::Example> pos2 = {{tokenize("do patrol"), ctx(2)}};
    std::vector<ilp::Example> neg2 = {{tokenize("do strike"), ctx(2)}};
    auto second = padap.adapt_from_examples(pos2, neg2, repo, "ctx2");
    ASSERT_TRUE(second.adapted) << second.reason;
    EXPECT_TRUE(second.reused);
    ASSERT_NE(padap.cache(), nullptr);
    EXPECT_EQ(padap.cache()->reuse_hits(), 1u);
    EXPECT_EQ(repo.latest_version(), 2u);
}

TEST(Pcp, LintModelFlagsStructuralDefects) {
    // An arity clash inside an annotation is an error-severity finding.
    auto broken = asg::AnswerSetGrammar::parse(R"(
        s -> "x" { p(1). p(2, 3). q :- p(1). }
    )");
    auto sink = PolicyCheckingPoint::lint_model(broken);
    EXPECT_TRUE(sink.has_errors());
    EXPECT_NE(sink.find(analysis::codes::kArityMismatch), nullptr);

    // The task grammar is structurally sound; context predicates surface
    // as warnings at worst.
    auto clean = PolicyCheckingPoint::lint_model(asg::AnswerSetGrammar::parse(kTaskInitial));
    EXPECT_FALSE(clean.has_errors()) << clean.render_text();
}

// A single-candidate space whose only hypothesis is functional (it rejects
// the negative examples at solve time) but structurally broken: it uses
// maxloa at two arities, which the static lint flags as ASP004.
ilp::HypothesisSpace defective_space() {
    ilp::HypothesisSpace space;
    ilp::Candidate c;
    c.rule = asp::parse_rule(":- requires(L)@2, maxloa(M), maxloa(M, M), L > M.");
    c.production = 0;
    c.cost = 4;
    space.candidates.push_back(std::move(c));
    return space;
}

std::vector<ilp::Example> mixed_arity_examples(bool positive) {
    auto ctx = [](int m) {
        return asp::parse_program("maxloa(" + std::to_string(m) + "). maxloa(" +
                                  std::to_string(m) + ", " + std::to_string(m) + ").");
    };
    std::vector<ilp::Example> out;
    if (positive) {
        out.emplace_back(tokenize("do patrol"), ctx(3));
        out.emplace_back(tokenize("do observe"), ctx(3));
    } else {
        out.emplace_back(tokenize("do strike"), ctx(3));
    }
    return out;
}

TEST(Padap, StaticLintRejectsDefectiveHypothesis) {
    PolicyAdaptationPoint padap(asg::AnswerSetGrammar::parse(kTaskInitial), defective_space());
    RepresentationsRepository repo;
    auto outcome = padap.adapt_from_examples(mixed_arity_examples(true),
                                             mixed_arity_examples(false), repo, "lint-gate");
    // Learning succeeds (the candidate separates the examples), but the
    // lint gate blocks adoption.
    ASSERT_TRUE(outcome.learn_result.found) << outcome.learn_result.failure_reason;
    EXPECT_FALSE(outcome.adapted);
    EXPECT_NE(outcome.reason.find("static lint"), std::string::npos) << outcome.reason;
    EXPECT_NE(outcome.reason.find("ASP004"), std::string::npos) << outcome.reason;
    EXPECT_TRUE(repo.empty());
}

TEST(Padap, StaticLintGateCanBeDisabled) {
    AdaptationOptions options;
    options.static_lint = false;
    PolicyAdaptationPoint padap(asg::AnswerSetGrammar::parse(kTaskInitial), defective_space(),
                                options);
    RepresentationsRepository repo;
    auto outcome = padap.adapt_from_examples(mixed_arity_examples(true),
                                             mixed_arity_examples(false), repo, "no-gate");
    ASSERT_TRUE(outcome.adapted) << outcome.reason;
    EXPECT_EQ(repo.latest_version(), 1u);
}

TEST(Padap, StaticLintAcceptsCleanHypothesis) {
    // The standard LOA task: the learned constraint lints clean, so the
    // gate stays out of the way.
    PolicyAdaptationPoint padap(asg::AnswerSetGrammar::parse(kTaskInitial), task_space());
    RepresentationsRepository repo;
    auto outcome = padap.adapt_from_examples(loa_examples(true), loa_examples(false), repo, "ok");
    ASSERT_TRUE(outcome.adapted) << outcome.reason;
}

TEST(Monitor, AuditLogRendersHistory) {
    DecisionMonitor monitor;
    auto i0 = monitor.record({tokenize("do patrol"), {}, true, 1, std::nullopt});
    monitor.record({tokenize("do strike"), {}, false, 2, std::nullopt});
    EXPECT_TRUE(monitor.attach_feedback(i0, false));  // that permit was wrong
    auto text = monitor.render_audit();
    EXPECT_NE(text.find("#0 do patrol -> Permit (model v1) [WRONG]"), std::string::npos);
    EXPECT_NE(text.find("#1 do strike -> Deny (model v2)"), std::string::npos);
    EXPECT_NE(text.find("decisions: 2, permitted: 1, feedback: 1"), std::string::npos);
    EXPECT_NE(text.find("observed accuracy: 0.000"), std::string::npos);
    EXPECT_NE(text.find("pre-v2 decisions: 1"), std::string::npos);
}

TEST(Monitor, AuditLogTailOnly) {
    DecisionMonitor monitor;
    for (int i = 0; i < 5; ++i) monitor.record({tokenize("r" + std::to_string(i)), {}, true, 1, std::nullopt});
    auto text = monitor.render_audit(2);
    EXPECT_EQ(text.find("#0 "), std::string::npos);
    EXPECT_NE(text.find("#3 "), std::string::npos);
    EXPECT_NE(text.find("#4 "), std::string::npos);
}

TEST(Pbms, CharacterizationBoundsTheAms) {
    PolicyBasedManagementSystem pbms;
    PolicyCharacterization c;
    c.grammar_text = kTaskInitial;
    c.root_constraints = asp::parse_program(":- requires(L)@2, L > 4.");  // hard ceiling
    c.forbidden.emplace_back(tokenize("do strike"), asp::parse_program("maxloa(9)."));
    c.space = task_space();
    pbms.define("convoy-ops", std::move(c));
    EXPECT_EQ(pbms.characterization_count(), 1u);
    ASSERT_NE(pbms.find("convoy-ops"), nullptr);

    auto ams = pbms.instantiate("alpha", "convoy-ops");
    ams.pip().add_source("loa", [] { return asp::parse_program("maxloa(9)."); });
    // The root constraint is active before any learning... requires(4) <= 4,
    // so strike is still syntactically permitted by the fixed part.
    auto [strike_ok, i] = ams.handle_request(tokenize("do strike"));
    (void)i;
    EXPECT_TRUE(strike_ok);
    // But the managing party's forbidden boundary blocks adopting any model
    // that would keep accepting it.
    std::vector<ilp::Example> pos = {{tokenize("do patrol"), asp::parse_program("maxloa(3).")}};
    auto outcome = ams.learn_model(pos, {});
    EXPECT_FALSE(outcome.adapted);
    EXPECT_NE(outcome.reason.find("forbidden"), std::string::npos);
}

TEST(Pbms, RootConstraintsRestrictLanguage) {
    PolicyBasedManagementSystem pbms;
    PolicyCharacterization c;
    c.grammar_text = kTaskInitial;
    c.root_constraints = asp::parse_program(":- requires(L)@2, L > 2.");
    c.space = task_space();
    pbms.define("tight", std::move(c));
    auto ams = pbms.instantiate("beta", "tight");
    ams.pip().add_source("loa", [] { return asp::parse_program("maxloa(9)."); });
    auto [strike_ok, a] = ams.handle_request(tokenize("do strike"));
    auto [patrol_ok, b] = ams.handle_request(tokenize("do patrol"));
    (void)a;
    (void)b;
    EXPECT_FALSE(strike_ok);  // blocked by the managing party's ceiling
    EXPECT_TRUE(patrol_ok);
}

TEST(Pbms, UnknownCharacterizationThrows) {
    PolicyBasedManagementSystem pbms;
    EXPECT_THROW(pbms.instantiate("x", "nope"), std::out_of_range);
}

TEST(Coalition, SharingPropagatesLearnedModels) {
    auto alpha = make_ams("alpha");
    auto beta = make_ams("beta");
    alpha.pip().add_source("loa", [] { return asp::parse_program("maxloa(3)."); });
    beta.pip().add_source("loa", [] { return asp::parse_program("maxloa(3)."); });
    ASSERT_TRUE(alpha.learn_model(loa_examples(true), loa_examples(false)).adapted);

    Coalition coalition;
    coalition.add_member(&alpha);
    coalition.add_member(&beta);
    coalition.publish(alpha);
    EXPECT_EQ(coalition.distribute_latest(), 1u);

    // Beta now enforces alpha's learned policy without having learned.
    auto [strike_ok, i] = beta.handle_request(tokenize("do strike"));
    (void)i;
    EXPECT_FALSE(strike_ok);
    EXPECT_EQ(beta.model_version(), 1u);
}

TEST(Coalition, ImportRejectedWhenItViolatesLocalConstraints) {
    auto alpha = make_ams("alpha");
    alpha.pip().add_source("loa", [] { return asp::parse_program("maxloa(3)."); });
    // Alpha learns nothing restrictive (no negatives): permissive model.
    ASSERT_TRUE(alpha.learn_model(loa_examples(true), {}).adapted);

    AmsOptions strict;
    strict.adaptation.forbidden.emplace_back(tokenize("do strike"),
                                             asp::parse_program("maxloa(3)."));
    AutonomousManagedSystem beta("beta", asg::AnswerSetGrammar::parse(kTaskInitial), task_space(),
                                 strict);
    Coalition coalition;
    coalition.add_member(&alpha);
    coalition.add_member(&beta);
    coalition.publish(alpha);
    EXPECT_EQ(coalition.distribute_latest(), 0u);  // beta refuses the permissive model
    EXPECT_EQ(beta.model_version(), 0u);
}

}  // namespace
}  // namespace agenp::framework
