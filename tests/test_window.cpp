// RollingWindow + CostTable: bucket rotation across ring boundaries,
// empty-window quantiles, window-vs-cumulative consistency, concurrent
// writers (exercised under TSan in CI), and the EWMA cost/frequency math.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/costtable.hpp"
#include "obs/metrics.hpp"
#include "obs/window.hpp"

namespace obs = agenp::obs;
using std::chrono::seconds;

namespace {

// A local registry keeps these tests independent of everything else the
// process has instrumented.
struct WindowFixture {
    obs::MetricsRegistry registry;
    obs::WindowOptions options;
    explicit WindowFixture(std::size_t buckets = 8) { options.buckets = buckets; }
};

}  // namespace

TEST(RollingWindow, EmptyWindowBeforeAnyTick) {
    WindowFixture f;
    obs::RollingWindow window(f.registry, f.options);
    obs::WindowDelta delta = window.window_at(seconds(10), 1000);
    EXPECT_FALSE(delta.complete);
    EXPECT_DOUBLE_EQ(delta.seconds, 0.0);
    EXPECT_EQ(delta.counter("anything"), 0u);
    EXPECT_EQ(delta.histogram("anything"), nullptr);
    EXPECT_DOUBLE_EQ(delta.rate("anything"), 0.0);
}

TEST(RollingWindow, CounterDeltaAndRate) {
    WindowFixture f;
    obs::RollingWindow window(f.registry, f.options);
    obs::Counter& c = f.registry.counter("w.requests");
    c.add(100);
    window.tick_at(0);
    c.add(50);
    obs::WindowDelta delta = window.window_at(seconds(10), 10000);
    EXPECT_TRUE(delta.complete);
    EXPECT_DOUBLE_EQ(delta.seconds, 10.0);
    EXPECT_EQ(delta.counter("w.requests"), 50u);
    EXPECT_DOUBLE_EQ(delta.rate("w.requests"), 5.0);
}

TEST(RollingWindow, PicksNewestBucketAtLeastSpanOld) {
    WindowFixture f;
    obs::RollingWindow window(f.registry, f.options);
    obs::Counter& c = f.registry.counter("w.requests");
    // Buckets at t=0s (c=0), t=5s (c=10), t=10s (c=30).
    window.tick_at(0);
    c.add(10);
    window.tick_at(5000);
    c.add(20);
    window.tick_at(10000);
    c.add(5);
    // A 10s window at t=15s must subtract the t=5s bucket (newest >= 10s
    // old), not t=0 and not t=10s.
    obs::WindowDelta delta = window.window_at(seconds(10), 15000);
    EXPECT_TRUE(delta.complete);
    EXPECT_DOUBLE_EQ(delta.seconds, 10.0);
    EXPECT_EQ(delta.counter("w.requests"), 25u);
}

TEST(RollingWindow, BucketRotationEvictsOldestAcrossRingBoundary) {
    WindowFixture f(/*buckets=*/4);
    obs::RollingWindow window(f.registry, f.options);
    obs::Counter& c = f.registry.counter("w.requests");
    // 10 ticks through a 4-slot ring: only t=6s..9s survive.
    for (int t = 0; t < 10; ++t) {
        window.tick_at(static_cast<std::uint64_t>(t) * 1000);
        c.add(1);
    }
    EXPECT_EQ(window.bucket_count(), 4u);
    // A 60s window at t=9.5s wants a bucket >= 60s old; the oldest left is
    // t=6s (counter was 6), so the window is marked incomplete.
    obs::WindowDelta delta = window.window_at(seconds(60), 9500);
    EXPECT_FALSE(delta.complete);
    EXPECT_DOUBLE_EQ(delta.seconds, 3.5);
    EXPECT_EQ(delta.counter("w.requests"), 4u);
}

TEST(RollingWindow, WarmupFallsBackToOldestBucket) {
    WindowFixture f;
    obs::RollingWindow window(f.registry, f.options);
    obs::Counter& c = f.registry.counter("w.requests");
    window.tick_at(1000);
    c.add(7);
    // 5 minutes of history requested, 2 seconds exist.
    obs::WindowDelta delta = window.window_at(seconds(300), 3000);
    EXPECT_FALSE(delta.complete);
    EXPECT_DOUBLE_EQ(delta.seconds, 2.0);
    EXPECT_EQ(delta.counter("w.requests"), 7u);
    EXPECT_DOUBLE_EQ(delta.rate("w.requests"), 3.5);
}

TEST(RollingWindow, HistogramDeltaQuantilesReflectOnlyTheWindow) {
    WindowFixture f;
    obs::RollingWindow window(f.registry, f.options);
    obs::Histogram& h = f.registry.histogram("w.latency_us");
    // Old traffic: fast requests, outside the window.
    for (int i = 0; i < 1000; ++i) h.observe(4);
    window.tick_at(0);
    // Window traffic: slow requests only.
    for (int i = 0; i < 100; ++i) h.observe(5000);
    obs::WindowDelta delta = window.window_at(seconds(10), 10000);
    const obs::Histogram::Snapshot* snap = delta.histogram("w.latency_us");
    ASSERT_NE(snap, nullptr);
    EXPECT_EQ(snap->count, 100u);
    EXPECT_EQ(snap->sum, 100u * 5000u);
    // The cumulative p50 is ~4us (1000 fast vs 100 slow); the windowed p50
    // must land in the slow bucket.
    EXPECT_GT(snap->quantile(0.5), 1000.0);
    obs::Histogram::Snapshot cumulative = h.snapshot();
    EXPECT_LT(cumulative.quantile(0.5), 100.0);
}

TEST(RollingWindow, EmptyWindowHistogramHasNoQuantiles) {
    WindowFixture f;
    obs::RollingWindow window(f.registry, f.options);
    obs::Histogram& h = f.registry.histogram("w.latency_us");
    for (int i = 0; i < 50; ++i) h.observe(123);
    window.tick_at(0);
    // No observations since the tick: histogram() filters count==0 deltas.
    obs::WindowDelta delta = window.window_at(seconds(10), 10000);
    EXPECT_EQ(delta.histogram("w.latency_us"), nullptr);
    // The underlying delta row still exists with zero count.
    bool found = false;
    for (const auto& [key, snap] : delta.histograms) {
        if (key == "w.latency_us") {
            found = true;
            EXPECT_EQ(snap.count, 0u);
            EXPECT_DOUBLE_EQ(snap.quantile(0.5), 0.0);
        }
    }
    EXPECT_TRUE(found);
}

TEST(RollingWindow, InstrumentRegisteredMidWindowCountsFromZero) {
    WindowFixture f;
    obs::RollingWindow window(f.registry, f.options);
    window.tick_at(0);
    obs::Counter& late = f.registry.counter("w.late");
    late.add(9);
    obs::WindowDelta delta = window.window_at(seconds(10), 10000);
    EXPECT_EQ(delta.counter("w.late"), 9u);
}

TEST(RollingWindow, ResetClampsToLiveValueInsteadOfWrapping) {
    WindowFixture f;
    obs::RollingWindow window(f.registry, f.options);
    obs::Counter& c = f.registry.counter("w.requests");
    c.add(1000);
    window.tick_at(0);
    c.reset();
    c.add(3);
    obs::WindowDelta delta = window.window_at(seconds(10), 10000);
    EXPECT_EQ(delta.counter("w.requests"), 3u);
}

TEST(RollingWindow, WindowVsCumulativeConsistency) {
    // A window spanning the whole process lifetime must agree with the
    // cumulative registry exactly.
    WindowFixture f;
    obs::RollingWindow window(f.registry, f.options);
    window.tick_at(0);  // before any traffic
    obs::Counter& c = f.registry.counter("w.requests");
    obs::Histogram& h = f.registry.histogram("w.latency_us");
    for (int i = 1; i <= 500; ++i) {
        c.add(1);
        h.observe(static_cast<std::uint64_t>(i));
    }
    obs::WindowDelta delta = window.window_at(seconds(1), 60000);
    obs::Histogram::Snapshot cumulative = h.snapshot();
    EXPECT_EQ(delta.counter("w.requests"), c.value());
    const obs::Histogram::Snapshot* windowed = delta.histogram("w.latency_us");
    ASSERT_NE(windowed, nullptr);
    EXPECT_EQ(windowed->count, cumulative.count);
    EXPECT_EQ(windowed->sum, cumulative.sum);
    EXPECT_DOUBLE_EQ(windowed->quantile(0.5), cumulative.quantile(0.5));
    EXPECT_DOUBLE_EQ(windowed->quantile(0.99), cumulative.quantile(0.99));
}

TEST(RollingWindow, ConcurrentWritersAndTickers) {
    // Writers hammer instruments while a ticker rotates buckets and a
    // reader takes windows — the TSan CI job runs this for data races.
    WindowFixture f(/*buckets=*/16);
    obs::RollingWindow window(f.registry, f.options);
    obs::Counter& c = f.registry.counter("w.requests");
    obs::Histogram& h = f.registry.histogram("w.latency_us");
    std::atomic<bool> stop{false};

    std::vector<std::thread> writers;
    writers.reserve(4);
    for (int t = 0; t < 4; ++t) {
        writers.emplace_back([&] {
            while (!stop.load(std::memory_order_relaxed)) {
                c.add(1);
                h.observe(42);
            }
        });
    }
    std::thread ticker([&] {
        for (int i = 0; i < 50; ++i) window.tick();
    });
    std::uint64_t last = 0;
    for (int i = 0; i < 50; ++i) {
        obs::WindowDelta delta = window.window(seconds(1));
        std::uint64_t seen = delta.counter("w.requests");
        (void)last;
        last = seen;
    }
    ticker.join();
    stop.store(true, std::memory_order_relaxed);
    for (std::thread& w : writers) w.join();
    EXPECT_GE(window.bucket_count(), 1u);
}

TEST(WindowTicker, TicksAndRunsCallback) {
    WindowFixture f;
    obs::RollingWindow window(f.registry, f.options);
    std::atomic<int> callbacks{0};
    {
        obs::WindowTicker ticker(window, [&] { callbacks.fetch_add(1); });
        // Constructor tick lands immediately; destructor joins cleanly
        // even when no interval has elapsed.
        EXPECT_GE(window.bucket_count(), 1u);
    }
    SUCCEED();
}

TEST(CostTable, ObserveDrivesEwmaTowardSteadyCost) {
    obs::CostTable table;
    obs::CostCell& cell = table.cell("x.check");
    cell.observe(100);
    EXPECT_DOUBLE_EQ(cell.ewma_us(), 100.0);  // first sample seeds the EWMA
    for (int i = 0; i < 50; ++i) cell.observe(200);
    EXPECT_NEAR(cell.ewma_us(), 200.0, 1.0);
    EXPECT_EQ(cell.calls(), 51u);
    EXPECT_EQ(cell.total_us(), 100u + 50u * 200u);
}

TEST(CostTable, SameNameReturnsSameCell) {
    obs::CostTable table;
    EXPECT_EQ(&table.cell("a"), &table.cell("a"));
    EXPECT_NE(&table.cell("a"), &table.cell("b"));
}

TEST(CostTable, SnapshotSortsByWallTimeShare) {
    obs::CostTable table;
    // Frequent+expensive dominates; rare+cheap trails.
    obs::CostCell& hot = table.cell("hot");
    obs::CostCell& cold = table.cell("cold");
    table.tick();  // establish a tick baseline
    for (int i = 0; i < 100; ++i) hot.observe(500);
    cold.observe(10);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    table.tick();  // folds the call deltas into the frequency EWMA
    std::vector<obs::CostEntry> entries = table.snapshot();
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].check, "hot");
    EXPECT_GT(entries[0].frequency_hz, entries[1].frequency_hz);
    EXPECT_GT(entries[0].us_per_s, entries[1].us_per_s);
}

TEST(CostTable, RenderJsonListsEveryCheck) {
    obs::CostTable table;
    table.cell("asp.solve").observe(3000);
    table.cell("cache_probe").observe(2);
    std::string json = table.render_json();
    EXPECT_NE(json.find("\"check\":\"asp.solve\""), std::string::npos);
    EXPECT_NE(json.find("\"check\":\"cache_probe\""), std::string::npos);
    EXPECT_NE(json.find("\"ewma_us\":3000.00"), std::string::npos);
    std::string text = table.render_text();
    EXPECT_NE(text.find("asp.solve"), std::string::npos);
}

TEST(CostTable, ResetZeroesCells) {
    obs::CostTable table;
    obs::CostCell& cell = table.cell("x");
    cell.observe(100);
    table.tick();
    table.reset();
    EXPECT_EQ(cell.calls(), 0u);
    EXPECT_DOUBLE_EQ(cell.ewma_us(), 0.0);
    EXPECT_DOUBLE_EQ(cell.frequency_hz(), 0.0);
}

TEST(CostTable, ConcurrentObserversStayConsistent) {
    obs::CostTable table;
    obs::CostCell& cell = table.cell("contended");
    std::vector<std::thread> threads;
    threads.reserve(4);
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < 10000; ++i) cell.observe(10);
        });
    }
    std::thread ticker([&] {
        for (int i = 0; i < 100; ++i) table.tick();
    });
    for (std::thread& t : threads) t.join();
    ticker.join();
    EXPECT_EQ(cell.calls(), 40000u);
    EXPECT_EQ(cell.total_us(), 400000u);
    EXPECT_NEAR(cell.ewma_us(), 10.0, 0.01);
}

TEST(ScopedCost, ObservesElapsedTime) {
    obs::CostTable table;
    obs::CostCell& cell = table.cell("timed");
    {
        obs::ScopedCost cost(cell);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_EQ(cell.calls(), 1u);
    EXPECT_GE(cell.total_us(), 1000u);
}

TEST(ScopedCost, DisabledMetricsSkipObservation) {
    obs::CostTable table;
    obs::CostCell& cell = table.cell("gated");
    obs::set_metrics_enabled(false);
    {
        obs::ScopedCost cost(cell);
    }
    obs::set_metrics_enabled(true);
    EXPECT_EQ(cell.calls(), 0u);
}
