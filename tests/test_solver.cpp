#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "asp/grounder.hpp"
#include "asp/parser.hpp"
#include "asp/solver.hpp"
#include "asp/stratify.hpp"

namespace agenp::asp {
namespace {

// Answer sets of `text` as sets of atom strings, sorted for comparison.
std::set<std::vector<std::string>> answer_sets(std::string_view text, std::size_t max_models = 0) {
    auto gp = ground(parse_program(text));
    auto result = solve(gp, {.max_models = max_models});
    EXPECT_FALSE(result.exhausted);
    std::set<std::vector<std::string>> out;
    for (const auto& m : result.models) out.insert(model_to_strings(gp, m));
    return out;
}

TEST(Solver, FactsYieldSingleModel) {
    auto models = answer_sets("p. q(1).");
    ASSERT_EQ(models.size(), 1u);
    EXPECT_EQ(*models.begin(), (std::vector<std::string>{"p", "q(1)"}));
}

TEST(Solver, DefiniteRulesDeriveClosure) {
    auto models = answer_sets("p. q :- p. r :- q.");
    ASSERT_EQ(models.size(), 1u);
    EXPECT_EQ(*models.begin(), (std::vector<std::string>{"p", "q", "r"}));
}

TEST(Solver, NegationAsFailure) {
    auto models = answer_sets("q :- not p.");
    ASSERT_EQ(models.size(), 1u);
    EXPECT_EQ(*models.begin(), (std::vector<std::string>{"q"}));
}

TEST(Solver, EvenLoopGivesTwoAnswerSets) {
    auto models = answer_sets("p :- not q. q :- not p.");
    ASSERT_EQ(models.size(), 2u);
    EXPECT_TRUE(models.contains({"p"}));
    EXPECT_TRUE(models.contains({"q"}));
}

TEST(Solver, OddLoopIsUnsatisfiable) {
    auto models = answer_sets("p :- not p.");
    EXPECT_TRUE(models.empty());
}

TEST(Solver, PositiveLoopIsUnfounded) {
    // p and q support each other positively: the empty set is the unique
    // answer set; {p, q} is a supported model but not stable.
    auto models = answer_sets("p :- q. q :- p.");
    ASSERT_EQ(models.size(), 1u);
    EXPECT_EQ(*models.begin(), std::vector<std::string>{});
}

TEST(Solver, PositiveLoopWithExternalSupport) {
    auto models = answer_sets("p :- q. q :- p. q :- r. r.");
    ASSERT_EQ(models.size(), 1u);
    EXPECT_EQ(*models.begin(), (std::vector<std::string>{"p", "q", "r"}));
}

TEST(Solver, LoopThroughNegationChoice) {
    // Choice between a and b via even loop, with a constraint killing b.
    auto models = answer_sets(R"(
        a :- not b.
        b :- not a.
        :- b.
    )");
    ASSERT_EQ(models.size(), 1u);
    EXPECT_EQ(*models.begin(), std::vector<std::string>{"a"});
}

TEST(Solver, ConstraintEliminatesModels) {
    auto models = answer_sets("p. :- p.");
    EXPECT_TRUE(models.empty());
}

TEST(Solver, EmptyConstraintIsUnsat) {
    Program p;
    p.add(Rule::constraint({}));
    auto gp = ground(p);
    EXPECT_FALSE(satisfiable(gp));
}

TEST(Solver, EmptyProgramHasEmptyAnswerSet) {
    auto models = answer_sets("");
    ASSERT_EQ(models.size(), 1u);
    EXPECT_TRUE(models.begin()->empty());
}

TEST(Solver, NegativeConstraintForcesDerivation) {
    // :- not p requires p, which is only derivable via choosing a.
    auto models = answer_sets(R"(
        a :- not b.
        b :- not a.
        p :- a.
        :- not p.
    )");
    ASSERT_EQ(models.size(), 1u);
    EXPECT_EQ(*models.begin(), (std::vector<std::string>{"a", "p"}));
}

TEST(Solver, ThreeWayChoiceEnumeration) {
    // Pairwise exclusion over {a, b, c} gives exactly three answer sets.
    auto models = answer_sets(R"(
        a :- not b, not c.
        b :- not a, not c.
        c :- not a, not b.
    )");
    ASSERT_EQ(models.size(), 3u);
    EXPECT_TRUE(models.contains({"a"}));
    EXPECT_TRUE(models.contains({"b"}));
    EXPECT_TRUE(models.contains({"c"}));
}

TEST(Solver, MaxModelsCapsEnumeration) {
    auto gp = ground(parse_program("p :- not q. q :- not p."));
    auto result = solve(gp, {.max_models = 1});
    EXPECT_EQ(result.models.size(), 1u);
}

TEST(Solver, GroundedVariablesBehaveClassically) {
    auto models = answer_sets(R"(
        item(1). item(2). item(3).
        cheap(X) :- item(X), X <= 2.
        expensive(X) :- item(X), not cheap(X).
    )");
    ASSERT_EQ(models.size(), 1u);
    auto& m = *models.begin();
    EXPECT_TRUE(std::count(m.begin(), m.end(), "expensive(3)") == 1);
    EXPECT_TRUE(std::count(m.begin(), m.end(), "cheap(1)") == 1);
    EXPECT_TRUE(std::count(m.begin(), m.end(), "expensive(1)") == 0);
}

TEST(Solver, TransitiveClosureWithNegation) {
    auto models = answer_sets(R"(
        e(1,2). e(2,3). node(1). node(2). node(3).
        r(X,Y) :- e(X,Y).
        r(X,Z) :- r(X,Y), e(Y,Z).
        unreachable(X) :- node(X), not r(1,X).
    )");
    ASSERT_EQ(models.size(), 1u);
    auto& m = *models.begin();
    EXPECT_EQ(std::count(m.begin(), m.end(), "unreachable(1)"), 1);
    EXPECT_EQ(std::count(m.begin(), m.end(), "unreachable(2)"), 0);
    EXPECT_EQ(std::count(m.begin(), m.end(), "r(1,3)"), 1);
}

TEST(Solver, DecisionBudgetSurfacesAsExhausted) {
    // 2^12 assignments with a tiny decision budget: the search must give up
    // and say so rather than claiming unsatisfiability.
    std::string text;
    for (int i = 0; i < 12; ++i) {
        text += "p" + std::to_string(i) + " :- not q" + std::to_string(i) + ".\n";
        text += "q" + std::to_string(i) + " :- not p" + std::to_string(i) + ".\n";
    }
    auto gp = ground(parse_program(text));
    auto result = solve(gp, {.max_models = 0, .max_decisions = 3});
    EXPECT_TRUE(result.exhausted);
}

TEST(Solver, StatsCountSearchEffort) {
    // Three even loops, full enumeration: 8 models, real branching.
    std::string text;
    for (int i = 0; i < 3; ++i) {
        text += "p" + std::to_string(i) + " :- not q" + std::to_string(i) + ".\n";
        text += "q" + std::to_string(i) + " :- not p" + std::to_string(i) + ".\n";
    }
    auto result = solve(ground(parse_program(text)), {.max_models = 0});
    EXPECT_EQ(result.models.size(), 8u);
    EXPECT_EQ(result.stats.models, 8u);
    EXPECT_GT(result.stats.decisions, 0u);
    EXPECT_GT(result.stats.propagations, 0u);
    EXPECT_GT(result.stats.backtracks, 0u);
    // Every enumerated total assignment is tested for stability.
    EXPECT_GE(result.stats.stability_checks, 8u);
}

TEST(Solver, StatsOnPropagationOnlyProgram) {
    // A definite program is fully decided by unit propagation: no branching,
    // no conflicts, but propagations and the stability check still happen.
    auto result = solve(ground(parse_program("p. q :- p. r :- q.")), {.max_models = 0});
    EXPECT_EQ(result.models.size(), 1u);
    EXPECT_EQ(result.stats.decisions, 0u);
    EXPECT_EQ(result.stats.backtracks, 0u);
    EXPECT_GT(result.stats.propagations, 0u);
    EXPECT_EQ(result.stats.models, 1u);
}

TEST(Solver, StatsCountConflictsOnUnsat) {
    auto result = solve(ground(parse_program("p :- not q. q :- not p. :- p. :- q.")),
                        {.max_models = 0});
    EXPECT_TRUE(result.models.empty());
    EXPECT_GT(result.stats.conflicts, 0u);
}

TEST(Solver, SatisfiableHelper) {
    EXPECT_TRUE(satisfiable(ground(parse_program("p."))));
    EXPECT_FALSE(satisfiable(ground(parse_program("p. :- p."))));
}

TEST(Solver, ModelToStringsSorts) {
    auto gp = ground(parse_program("zebra. apple."));
    auto result = solve(gp, {.max_models = 1});
    ASSERT_EQ(result.models.size(), 1u);
    auto strs = model_to_strings(gp, result.models[0]);
    EXPECT_EQ(strs, (std::vector<std::string>{"apple", "zebra"}));
}

// Property sweep: programs built from independent even loops have 2^k
// answer sets.
class EvenLoopSweep : public ::testing::TestWithParam<int> {};

TEST_P(EvenLoopSweep, CountsArePowersOfTwo) {
    int k = GetParam();
    std::string text;
    for (int i = 0; i < k; ++i) {
        text += "p" + std::to_string(i) + " :- not q" + std::to_string(i) + ".\n";
        text += "q" + std::to_string(i) + " :- not p" + std::to_string(i) + ".\n";
    }
    auto models = answer_sets(text);
    EXPECT_EQ(models.size(), static_cast<std::size_t>(1) << k);
}

INSTANTIATE_TEST_SUITE_P(Sweep, EvenLoopSweep, ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(Stratify, DefiniteProgramIsStratified) {
    EXPECT_TRUE(is_stratified(parse_program("p. q :- p.")));
}

TEST(Stratify, NegationWithoutCycleIsStratified) {
    EXPECT_TRUE(is_stratified(parse_program("q :- not p. r :- q, not s.")));
}

TEST(Stratify, EvenLoopIsNotStratified) {
    EXPECT_FALSE(is_stratified(parse_program("p :- not q. q :- not p.")));
}

TEST(Stratify, PositiveCycleIsStratified) {
    EXPECT_TRUE(is_stratified(parse_program("p :- q. q :- p.")));
}

TEST(Stratify, ConstraintsDoNotAffectStratification) {
    EXPECT_TRUE(is_stratified(parse_program("p. :- p, not p.")));
}

TEST(Stratify, AnnotatedPredicatesAreDistinct) {
    // p@1 and p are different predicates; no cycle here.
    Program prog;
    prog.add(parse_rule("p :- not q."));
    prog.add(parse_rule("q :- r."));
    EXPECT_TRUE(is_stratified(prog));
}

TEST(Stratify, SelfNegationIsNotStratified) {
    auto info = analyze_stratification(parse_program("p :- not p."));
    EXPECT_FALSE(info.stratified);
    ASSERT_EQ(info.negative_cycle.size(), 1u);
    EXPECT_EQ(info.negative_cycle[0].str(), "p");
}

TEST(Stratify, EmptyProgramIsStratified) {
    auto info = analyze_stratification(Program{});
    EXPECT_TRUE(info.stratified);
    EXPECT_TRUE(info.strata.empty());
    EXPECT_TRUE(info.negative_cycle.empty());
    EXPECT_EQ(info.stratum_of(Symbol("absent")), -1);
}

TEST(Stratify, BodyOnlyPredicatesParticipateAtStratumZero) {
    // q and s are never derived; they still anchor the dependency graph.
    auto info = analyze_stratification(parse_program("p :- q, not s."));
    ASSERT_TRUE(info.stratified);
    EXPECT_EQ(info.stratum_of(Symbol("q")), 0);
    EXPECT_EQ(info.stratum_of(Symbol("s")), 0);
    EXPECT_EQ(info.stratum_of(Symbol("p")), 1);
}

TEST(Stratify, StrataIndependentOfInternShardOrder) {
    // Symbol ids are hash-sharded (id = local<<4 | shard), so id order is
    // unrelated to intern order or name order. The strata must come out
    // the same for a renamed copy of the same negation chain, whatever
    // shards the names land on.
    auto a = analyze_stratification(parse_program("base. mid :- not base. top :- not mid."));
    ASSERT_TRUE(a.stratified);
    EXPECT_EQ(a.stratum_of(Symbol("base")), 0);
    EXPECT_EQ(a.stratum_of(Symbol("mid")), 1);
    EXPECT_EQ(a.stratum_of(Symbol("top")), 2);

    auto b = analyze_stratification(parse_program(
        "alpha_zz. beta_qq :- not alpha_zz. gamma_kk :- not beta_qq."));
    ASSERT_TRUE(b.stratified);
    EXPECT_EQ(b.stratum_of(Symbol("alpha_zz")), 0);
    EXPECT_EQ(b.stratum_of(Symbol("beta_qq")), 1);
    EXPECT_EQ(b.stratum_of(Symbol("gamma_kk")), 2);
}

TEST(Stratify, NegativeCycleIsDedupedAndNameOrdered) {
    auto info = analyze_stratification(parse_program(R"(
        stable.
        zeta :- not alpha.
        alpha :- not zeta.
    )"));
    ASSERT_FALSE(info.stratified);
    ASSERT_EQ(info.negative_cycle.size(), 2u);
    EXPECT_EQ(info.negative_cycle[0].str(), "alpha");
    EXPECT_EQ(info.negative_cycle[1].str(), "zeta");
}

}  // namespace
}  // namespace agenp::asp
