#include <gtest/gtest.h>

#include "analysis/lint.hpp"
#include "asp/parser.hpp"

namespace agenp::analysis {
namespace {

using asp::parse_program;

LintOptions with_externals(std::initializer_list<const char*> names) {
    LintOptions options;
    for (const char* n : names) options.external_predicates.emplace_back(util::Symbol(n));
    return options;
}

// --- program passes --------------------------------------------------------

TEST(LintProgram, FlagsUnsafeVariableWithRuleAndName) {
    auto sink = lint_program(parse_program(R"(
        q(1).
        r(Y) :- q(Y), not s(Z).
    )"));
    const auto* d = sink.find(codes::kUnsafeVariable);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::Error);
    EXPECT_EQ(d->location.rule, 1);
    EXPECT_EQ(d->location.production, -1);
    EXPECT_NE(d->message.find("Z"), std::string::npos);
    EXPECT_NE(d->location.context.find("r(Y)"), std::string::npos);
    EXPECT_TRUE(sink.has_errors());
    EXPECT_TRUE(sink.fails());
}

TEST(LintProgram, FlagsUndefinedPredicateAsWarningUnlessExternal) {
    const char* text = "p(X) :- q(X).";
    auto sink = lint_program(parse_program(text));
    const auto* d = sink.find(codes::kUndefinedPredicate);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::Warning);
    EXPECT_NE(d->message.find("q"), std::string::npos);
    EXPECT_FALSE(sink.fails());       // warnings do not gate by default
    EXPECT_TRUE(sink.fails(true));    // --strict promotes them

    auto relaxed = lint_program(parse_program(text), with_externals({"q", "p"}));
    EXPECT_EQ(relaxed.find(codes::kUndefinedPredicate), nullptr);
}

TEST(LintProgram, FlagsUnusedPredicateAsInfo) {
    auto sink = lint_program(parse_program("p(1). q(X) :- p(X)."));
    const auto* d = sink.find(codes::kUnusedPredicate);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::Info);
    EXPECT_NE(d->message.find("q"), std::string::npos);

    LintOptions options;
    options.check_unused = false;
    EXPECT_EQ(lint_program(parse_program("p(1)."), options).find(codes::kUnusedPredicate),
              nullptr);
}

TEST(LintProgram, FlagsArityMismatch) {
    auto sink = lint_program(parse_program(R"(
        t(1, 2).
        t(1).
    )"));
    const auto* d = sink.find(codes::kArityMismatch);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::Error);
    EXPECT_NE(d->message.find("t"), std::string::npos);
    EXPECT_NE(d->message.find("1, 2"), std::string::npos);
    EXPECT_EQ(d->location.rule, 1);  // where the second arity first appeared
}

TEST(LintProgram, FlagsNegationCycle) {
    auto sink = lint_program(parse_program("u :- not u."));
    const auto* d = sink.find(codes::kNotStratified);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::Warning);
    EXPECT_NE(d->message.find("{u}"), std::string::npos);
}

TEST(LintProgram, FlagsTriviallyUnsatConstraint) {
    auto sink = lint_program(parse_program("q(1). :- q(1)."));
    const auto* d = sink.find(codes::kUnsatConstraint);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::Error);
    EXPECT_EQ(d->location.rule, 1);

    // An empty body is vacuously true, so the constraint always fires.
    EXPECT_NE(lint_program(parse_program(":- 1 < 2.")).find(codes::kUnsatConstraint), nullptr);

    // Negation makes the body context-dependent: not flagged.
    EXPECT_EQ(lint_program(parse_program("q(1). :- q(1), not r."))
                  .find(codes::kUnsatConstraint),
              nullptr);
    // Non-fact positive body: not flagged.
    EXPECT_EQ(lint_program(parse_program("q(X) :- p(X). :- q(1).")).find(codes::kUnsatConstraint),
              nullptr);
}

TEST(LintProgram, FlagsVacuousRules) {
    auto ground_false = lint_program(parse_program("p :- q, 1 > 2. q."));
    const auto* d = ground_false.find(codes::kVacuousRule);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::Info);
    EXPECT_NE(d->message.find("1 > 2"), std::string::npos);

    auto complementary = lint_program(parse_program("p :- q, not q. q."));
    EXPECT_NE(complementary.find(codes::kVacuousRule), nullptr);
}

TEST(LintProgram, EstimatesGroundingBlowup) {
    // 4 constants x 3 variables -> 64 candidate instantiations > limit 50.
    LintOptions options;
    options.grounding_estimate_limit = 50;
    auto sink = lint_program(parse_program(R"(
        n(1). n(2). n(3). n(4).
        big(X, Y, Z) :- n(X), n(Y), n(Z).
        ok :- big(1, 2, 3).
    )"),
                             options);
    const auto* d = sink.find(codes::kGroundingBlowup);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::Warning);
    EXPECT_EQ(d->location.rule, 4);

    options.check_grounding = false;
    EXPECT_EQ(lint_program(parse_program("n(1). n(2). p(X, Y, Z) :- n(X), n(Y), n(Z)."), options)
                  .find(codes::kGroundingBlowup),
              nullptr);
}

TEST(LintProgram, CleanProgramProducesNoFindings) {
    auto sink = lint_program(parse_program(R"(
        edge(a, b).
        edge(b, c).
        path(X, Y) :- edge(X, Y).
        path(X, Z) :- edge(X, Y), path(Y, Z).
        reach :- path(a, c).
        :- not reach.
    )"));
    EXPECT_TRUE(sink.empty()) << sink.render_text();
}

// --- ASG passes ------------------------------------------------------------

TEST(LintAsg, FlagsUnreachableProduction) {
    auto g = asg::AnswerSetGrammar::parse(R"(
        s -> "a"
        orphan -> "b"
    )");
    auto sink = lint_asg(g);
    const auto* d = sink.find(codes::kUnreachableProduction);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::Warning);
    EXPECT_EQ(d->location.production, 1);
    EXPECT_NE(d->message.find("orphan"), std::string::npos);
}

TEST(LintAsg, FlagsNonproductiveProductionAndEmptyLanguage) {
    // `loop` never bottoms out, and the start symbol depends on it.
    auto g = asg::AnswerSetGrammar::parse(R"(
        s -> "go" loop
        loop -> "again" loop
    )");
    auto sink = lint_asg(g);
    const auto* dead = sink.find(codes::kNonproductiveProduction);
    ASSERT_NE(dead, nullptr);
    EXPECT_EQ(dead->severity, Severity::Warning);
    const auto* empty = sink.find(codes::kEmptyLanguage);
    ASSERT_NE(empty, nullptr);
    EXPECT_EQ(empty->severity, Severity::Error);
    EXPECT_TRUE(sink.fails());

    // A base case fixes both.
    auto fixed = asg::AnswerSetGrammar::parse(R"(
        s -> "go" loop
        loop -> "again" loop
        loop -> "stop"
    )");
    auto clean = lint_asg(fixed);
    EXPECT_EQ(clean.find(codes::kNonproductiveProduction), nullptr);
    EXPECT_EQ(clean.find(codes::kEmptyLanguage), nullptr);
}

TEST(LintAsg, FlagsAnnotationOnTerminalChild) {
    auto g = asg::AnswerSetGrammar::parse(R"(
        s -> "a" t { p :- q@1. }
        t -> "b" { q. }
    )");
    auto sink = lint_asg(g);
    const auto* d = sink.find(codes::kAnnotationOnTerminal);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::Warning);
    EXPECT_EQ(d->location.production, 0);
}

TEST(LintAsg, ResolvesDefinitionsAcrossNamespaces) {
    // requires/1 is defined by the task productions and consumed by the
    // request production through @2: no undefined/unused findings.
    auto g = asg::AnswerSetGrammar::parse(R"(
        request -> "do" task {
            :- requires(L)@2, maxloa(M), L > M.
        }
        task -> "patrol" { requires(2). }
        task -> "strike" { requires(4). }
    )");
    auto sink = lint_asg(g, with_externals({"maxloa"}));
    EXPECT_TRUE(sink.empty()) << sink.render_text();

    // Without the external declaration, maxloa is an undefined-predicate
    // warning in the request namespace — never an error.
    auto bare = lint_asg(g);
    const auto* d = bare.find(codes::kUndefinedPredicate);
    ASSERT_NE(d, nullptr);
    EXPECT_NE(d->message.find("maxloa"), std::string::npos);
    EXPECT_NE(d->message.find("request"), std::string::npos);
    EXPECT_FALSE(bare.has_errors());
}

TEST(LintAsg, SameNameDifferentNamespacesIsNotAnArityClash) {
    auto g = asg::AnswerSetGrammar::parse(R"(
        s -> "x" a b { ok :- tag(V)@2, tag(V, V)@3. }
        a -> "p" { tag(1). }
        b -> "q" { tag(2, 2). }
    )");
    auto sink = lint_asg(g, with_externals({"ok"}));
    EXPECT_EQ(sink.find(codes::kArityMismatch), nullptr) << sink.render_text();
}

TEST(LintAsg, FlagsArityMismatchWithinOneNamespace) {
    auto g = asg::AnswerSetGrammar::parse(R"(
        s -> "x" { p(1). p(2, 3). }
    )");
    auto sink = lint_asg(g);
    const auto* d = sink.find(codes::kArityMismatch);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->location.production, 0);
}

TEST(LintAsg, FlagsNegationCycleInsideAnnotation) {
    auto g = asg::AnswerSetGrammar::parse(R"(
        s -> "x" { p :- not q. q :- not p. ok :- p. }
    )");
    auto sink = lint_asg(g, with_externals({"ok", "q"}));
    const auto* d = sink.find(codes::kNotStratified);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::Warning);
    EXPECT_NE(d->message.find("s::p"), std::string::npos);
}

TEST(LintAsg, FlagsUnsafeRuleWithProductionLocation) {
    auto g = asg::AnswerSetGrammar::parse(R"(
        s -> "a" t
        t -> "b" { bad(X) :- ok. ok. }
    )");
    auto sink = lint_asg(g, with_externals({"bad"}));
    const auto* d = sink.find(codes::kUnsafeVariable);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->location.production, 1);
    EXPECT_EQ(d->location.rule, 0);
    EXPECT_NE(d->message.find("X"), std::string::npos);
}

// --- renderers -------------------------------------------------------------

TEST(DiagnosticSink, RendersTextAndJson) {
    auto sink = lint_program(parse_program("t(1). t(1, 2). u(X) :- t(X)."));
    auto text = sink.render_text();
    EXPECT_NE(text.find("error[ASP004]"), std::string::npos);
    EXPECT_NE(text.find("error(s)"), std::string::npos);

    auto json = sink.render_json();
    EXPECT_NE(json.find("\"errors\":1"), std::string::npos);
    EXPECT_NE(json.find("\"code\":\"ASP004\""), std::string::npos);
    EXPECT_NE(json.find("\"severity\":\"error\""), std::string::npos);
}

TEST(DiagnosticSink, JsonEscapesControlCharacters) {
    EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(DiagnosticSink, CountsAndSeverityLookup) {
    DiagnosticSink sink;
    Diagnostic err;
    err.code = codes::kUnsafeVariable;
    err.severity = Severity::Error;
    err.message = "boom";
    sink.report(err);
    Diagnostic warn;
    warn.code = codes::kNotStratified;
    warn.severity = Severity::Warning;
    sink.report(warn);
    EXPECT_EQ(sink.count(Severity::Error), 1u);
    EXPECT_EQ(sink.count(Severity::Warning), 1u);
    EXPECT_EQ(sink.count(Severity::Info), 0u);
    ASSERT_NE(sink.find_severity(Severity::Error), nullptr);
    EXPECT_EQ(sink.find_severity(Severity::Error)->message, "boom");
    EXPECT_EQ(sink.find_severity(Severity::Info), nullptr);
}

}  // namespace
}  // namespace agenp::analysis
