// End-to-end tests for the observability export surface: the Prometheus
// text exposition served on --metrics-listen, the graphite push renderer,
// the /healthz drain signal, and the NDJSON decision audit log (rotation,
// sampling, and trace_id cross-correlation with the flight recorder).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "cli/commands.hpp"
#include "obs/export/exposition.hpp"
#include "obs/export/http.hpp"
#include "obs/export/push.hpp"
#include "obs/metrics.hpp"
#include "srv/audit.hpp"
#include "srv/transport.hpp"
#include "srv/wire.hpp"
#include "util/strings.hpp"

namespace {

using agenp::cli::ServeCliOptions;
using agenp::cli::cmd_serve;

std::string temp_file(const std::string& name, const std::string& content) {
    std::string path = std::string(::testing::TempDir()) + "/agenp_" + name;
    std::ofstream out(path);
    out << content;
    return path;
}

// The same tiny serving grammar the CLI tests use: "do patrol" permits
// under maxloa(3), "do strike" denies.
const char* kServeGrammar = R"asg(
request -> "do" task {
  :- requires(L)@2, maxloa(M), L > M.
}
task -> "patrol" { requires(2). }
task -> "strike" { requires(5). }
)asg";

ServeCliOptions base_serve_options(const std::string& tag) {
    ServeCliOptions options;
    options.grammar_path = temp_file("export_" + tag + ".asg", kServeGrammar);
    options.context_path = temp_file("export_" + tag + ".lp", "maxloa(3).\n");
    options.threads = 2;
    return options;
}

// ---------------------------------------------------------------------------
// Exposition grammar validation helpers.

bool valid_prometheus_name(const std::string& name) {
    if (name.empty()) return false;
    if (!(std::isalpha(static_cast<unsigned char>(name[0])) || name[0] == '_' || name[0] == ':')) {
        return false;
    }
    for (char c : name) {
        if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':')) return false;
    }
    return true;
}

struct Sample {
    std::string name;    // full series name including any suffix
    std::string labels;  // raw label block without braces ("" when bare)
    double value = 0;
};

// Minimal checker for the text exposition format 0.0.4: validates the
// HELP/TYPE/sample structure and returns the samples for inspection.
// On a violation, fills `error` and returns an empty vector.
std::vector<Sample> parse_exposition(const std::string& body, std::string* error) {
    std::vector<Sample> samples;
    std::map<std::string, std::string> types;  // family -> type
    std::istringstream in(body);
    std::string line;
    auto fail = [&](const std::string& why) {
        if (error != nullptr) *error = why + ": " + line;
        return std::vector<Sample>{};
    };
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
            std::istringstream meta(line);
            std::string hash;
            std::string kind;
            std::string family;
            meta >> hash >> kind >> family;
            if (!valid_prometheus_name(family)) return fail("bad family name in comment");
            if (kind == "TYPE") {
                std::string type;
                meta >> type;
                if (type != "counter" && type != "gauge" && type != "histogram") {
                    return fail("unknown TYPE");
                }
                if (types.count(family) != 0) return fail("duplicate TYPE");
                types[family] = type;
            }
            continue;
        }
        if (line[0] == '#') continue;
        Sample sample;
        auto brace = line.find('{');
        auto space = line.rfind(' ');
        if (space == std::string::npos) return fail("sample line without value");
        if (brace != std::string::npos && brace < space) {
            auto close = line.rfind('}');
            if (close == std::string::npos || close > space) return fail("unterminated label block");
            sample.name = line.substr(0, brace);
            sample.labels = line.substr(brace + 1, close - brace - 1);
        } else {
            sample.name = line.substr(0, space);
        }
        if (!valid_prometheus_name(sample.name)) return fail("bad sample name");
        try {
            sample.value = std::stod(line.substr(space + 1));
        } catch (const std::exception&) {
            return fail("unparseable sample value");
        }
        // Every sample must belong to a family announced by a TYPE line;
        // histogram/counter samples match after stripping their suffix.
        std::string base = sample.name;
        for (const char* suffix : {"_total", "_bucket", "_sum", "_count"}) {
            std::string s(suffix);
            if (base.size() > s.size() && base.compare(base.size() - s.size(), s.size(), s) == 0 &&
                types.count(base.substr(0, base.size() - s.size())) != 0) {
                base = base.substr(0, base.size() - s.size());
                break;
            }
        }
        if (types.count(base) == 0) return fail("sample without TYPE line");
        samples.push_back(std::move(sample));
    }
    if (error != nullptr) error->clear();
    return samples;
}

std::string label_value(const std::string& labels, const std::string& key) {
    auto pos = labels.find(key + "=\"");
    if (pos == std::string::npos) return {};
    auto start = pos + key.size() + 2;
    auto end = labels.find('"', start);
    return labels.substr(start, end - start);
}

std::optional<agenp::obs::HttpResult> get(std::uint16_t port, const std::string& path,
                                          std::chrono::milliseconds timeout =
                                              std::chrono::milliseconds{10000}) {
    return agenp::obs::http_get("127.0.0.1", port, path, timeout);
}

// ---------------------------------------------------------------------------

TEST(ExpositionTest, RendersValidPrometheusText) {
    agenp::obs::Exposition exposition;
    exposition.add_counter("srv.requests", {}, 42, "Requests");
    exposition.add_gauge("srv.queue_depth", {{"replica", "0"}}, 3);
    agenp::obs::Histogram hist;
    hist.observe(1);
    hist.observe(100);
    hist.observe(100000);
    exposition.add_histogram("srv.latency_us", {}, hist.snapshot(), "Latency");
    std::string body = exposition.prometheus();
    std::string error;
    auto samples = parse_exposition(body, &error);
    ASSERT_TRUE(error.empty()) << error;
    ASSERT_FALSE(samples.empty());
    EXPECT_NE(body.find("# HELP agenp_srv_requests_total Requests"), std::string::npos);
    EXPECT_NE(body.find("# TYPE agenp_srv_requests_total counter"), std::string::npos);
    EXPECT_NE(body.find("agenp_srv_requests_total 42"), std::string::npos);
    EXPECT_NE(body.find("agenp_srv_queue_depth{replica=\"0\"} 3"), std::string::npos);
}

TEST(ExpositionTest, HistogramBucketsAreCumulativeAndEndAtInf) {
    agenp::obs::Exposition exposition;
    agenp::obs::Histogram hist;
    for (std::uint64_t v : {0ULL, 1ULL, 3ULL, 3ULL, 200ULL}) hist.observe(v);
    exposition.add_histogram("srv.latency_us", {}, hist.snapshot());
    std::string body = exposition.prometheus();
    std::string error;
    auto samples = parse_exposition(body, &error);
    ASSERT_TRUE(error.empty()) << error;

    double previous = 0;
    double inf_value = -1;
    double count_value = -1;
    double sum_value = -1;
    for (const auto& sample : samples) {
        if (sample.name == "agenp_srv_latency_us_bucket") {
            EXPECT_GE(sample.value, previous) << "buckets must be cumulative";
            previous = sample.value;
            if (label_value(sample.labels, "le") == "+Inf") inf_value = sample.value;
        } else if (sample.name == "agenp_srv_latency_us_count") {
            count_value = sample.value;
        } else if (sample.name == "agenp_srv_latency_us_sum") {
            sum_value = sample.value;
        }
    }
    EXPECT_EQ(inf_value, 5);
    EXPECT_EQ(count_value, 5);
    EXPECT_EQ(sum_value, 207);
}

TEST(ExpositionTest, GraphiteRendersPathValueTimestamp) {
    agenp::obs::Exposition exposition;
    exposition.add_counter("srv.requests", {}, 7);
    exposition.add_gauge("srv.queue_depth", {{"replica", "1"}}, 2);
    agenp::obs::Histogram hist;
    hist.observe(10);
    hist.observe(20);
    exposition.add_histogram("srv.latency_us", {}, hist.snapshot());
    std::string body = exposition.graphite("agenp", 1700000000);
    EXPECT_NE(body.find("agenp.srv.requests 7 1700000000\n"), std::string::npos);
    EXPECT_NE(body.find("agenp.srv.queue_depth;replica=1 2 1700000000\n"), std::string::npos);
    EXPECT_NE(body.find("agenp.srv.latency_us.count 2 1700000000\n"), std::string::npos);
    EXPECT_NE(body.find("agenp.srv.latency_us.sum 30 1700000000\n"), std::string::npos);
    EXPECT_NE(body.find("agenp.srv.latency_us.p99"), std::string::npos);
}

TEST(ExpositionTest, RegistryLabelsSurviveRoundTrip) {
    auto& counter = agenp::obs::metrics().counter("test.export.labeled", {{"shard", "3"}});
    counter.add(9);
    agenp::obs::Exposition exposition;
    exposition.append_registry(agenp::obs::metrics());
    std::string body = exposition.prometheus();
    EXPECT_NE(body.find("agenp_test_export_labeled_total{shard=\"3\"}"), std::string::npos);
}

// ---------------------------------------------------------------------------

TEST(HttpServerTest, ServesHandlerAndStripsQueryStrings) {
    agenp::obs::HttpServerOptions options;
    options.port = 0;
    agenp::obs::HttpServer server(options, [](const agenp::obs::HttpRequest& request) {
        agenp::obs::HttpResponse response;
        response.body = "path=" + request.path + "\n";
        return response;
    });
    ASSERT_NE(server.port(), 0);
    auto result = get(server.port(), "/metrics");
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->status, 200);
    EXPECT_EQ(result->body, "path=/metrics\n");
    result = get(server.port(), "/metrics?ts=1");
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->body, "path=/metrics\n");
    server.shutdown();
}

TEST(HttpServerTest, ExposesQueryStringAndParams) {
    agenp::obs::HttpServerOptions options;
    options.port = 0;
    agenp::obs::HttpServer server(options, [](const agenp::obs::HttpRequest& request) {
        agenp::obs::HttpResponse response;
        response.body = "seconds=" + agenp::obs::http_query_param(request.query, "seconds") +
                        " hz=" + agenp::obs::http_query_param(request.query, "hz") + "\n";
        return response;
    });
    auto result = get(server.port(), "/profz?seconds=2&hz=99");
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->body, "seconds=2 hz=99\n");
    result = get(server.port(), "/profz");
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->body, "seconds= hz=\n");
    server.shutdown();

    // The free-function parser handles valueless and missing keys.
    EXPECT_EQ(agenp::obs::http_query_param("a=1&b=2", "b"), "2");
    EXPECT_EQ(agenp::obs::http_query_param("a=1&b", "b"), "");
    EXPECT_EQ(agenp::obs::http_query_param("", "b"), "");
    EXPECT_EQ(agenp::obs::http_query_param("bb=3", "b"), "");
}

TEST(GraphitePusherTest, PushesRenderedBodyToPlainTcpSink) {
    // A one-shot TCP sink standing in for carbon: accept one connection,
    // read to EOF.
    int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(listen_fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    ASSERT_EQ(::listen(listen_fd, 1), 0);
    socklen_t len = sizeof(addr);
    ASSERT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
    std::uint16_t port = ntohs(addr.sin_port);

    std::string received;
    std::thread sink([&] {
        int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) return;
        char buf[4096];
        ssize_t n;
        while ((n = ::read(fd, buf, sizeof(buf))) > 0) received.append(buf, buf + n);
        ::close(fd);
    });

    agenp::obs::PushOptions options;
    options.host = "127.0.0.1";
    options.port = port;
    options.interval = std::chrono::seconds(3600);  // only the initial push
    agenp::obs::GraphitePusher pusher(options, [](std::time_t ts) {
        return "agenp.test.push 1 " + std::to_string(ts) + "\n";
    });
    for (int i = 0; i < 2000 && pusher.pushes() == 0; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    sink.join();
    ::close(listen_fd);
    pusher.stop();
    EXPECT_EQ(pusher.pushes(), 1U);
    EXPECT_NE(received.find("agenp.test.push 1 "), std::string::npos);
}

// ---------------------------------------------------------------------------

TEST(AuditLogTest, WritesOneValidJsonLinePerRecord) {
    std::string path = std::string(::testing::TempDir()) + "/agenp_audit_basic.ndjson";
    std::remove(path.c_str());
    std::uint64_t hash = agenp::util::fnv1a_hash("do patrol");
    {
        agenp::srv::AuditOptions options;
        options.path = path;
        agenp::srv::AuditLog audit(options);
        for (int i = 0; i < 3; ++i) {
            agenp::srv::AuditEntry entry;
            entry.trace_id = 100 + static_cast<std::uint64_t>(i);
            entry.client_id = 7;
            entry.request_hash = hash;
            entry.outcome = "Permit";
            entry.strategy = "repository";
            entry.cache_hit = (i > 0);
            entry.model_version = 1;
            entry.replica = 0;
            entry.latency_us = 42;
            audit.record(std::move(entry));
        }
        EXPECT_EQ(audit.recorded(), 3U);
    }
    std::ifstream in(path);
    std::string line;
    std::size_t lines = 0;
    while (std::getline(in, line)) {
        ++lines;
        auto parsed = agenp::srv::parse_json(line);
        ASSERT_TRUE(parsed.has_value()) << line;
        ASSERT_TRUE(parsed->is_object());
        EXPECT_EQ(parsed->find("outcome")->string, "Permit");
        EXPECT_EQ(parsed->find("strategy")->string, "repository");
        EXPECT_EQ(parsed->find("request_hash")->string, std::to_string(hash));
        EXPECT_GT(parsed->find("ts_ms")->number, 0);
        EXPECT_EQ(parsed->find("latency_us")->as_uint(), 42U);
    }
    EXPECT_EQ(lines, 3U);
    std::remove(path.c_str());
}

TEST(AuditLogTest, RotatesWhenSizeCapIsCrossed) {
    std::string path = std::string(::testing::TempDir()) + "/agenp_audit_rotate.ndjson";
    std::string rotated = path + ".1";
    std::remove(path.c_str());
    std::remove(rotated.c_str());
    agenp::srv::AuditOptions options;
    options.path = path;
    options.max_bytes = 512;  // a handful of lines per file
    agenp::srv::AuditLog audit(options);
    for (int i = 0; i < 50; ++i) {
        agenp::srv::AuditEntry entry;
        entry.trace_id = static_cast<std::uint64_t>(i);
        entry.outcome = "Permit";
        entry.strategy = "membership";
        audit.record(std::move(entry));
    }
    EXPECT_GE(audit.rotations(), 1U);
    EXPECT_EQ(audit.recorded(), 50U);
    std::ifstream current(path);
    std::ifstream previous(rotated);
    EXPECT_TRUE(current.good());
    EXPECT_TRUE(previous.good());
    // The live file holds the newest records and every line still parses.
    std::size_t lines = 0;
    std::string line;
    std::uint64_t last_trace = 0;
    while (std::getline(current, line)) {
        ++lines;
        auto parsed = agenp::srv::parse_json(line);
        ASSERT_TRUE(parsed.has_value()) << line;
        last_trace = parsed->find("trace_id")->as_uint();
    }
    EXPECT_GT(lines, 0U);
    EXPECT_EQ(last_trace, 49U);
    std::remove(path.c_str());
    std::remove(rotated.c_str());
}

TEST(AuditLogTest, SamplingKeepsEveryNth) {
    std::string path = std::string(::testing::TempDir()) + "/agenp_audit_sample.ndjson";
    std::remove(path.c_str());
    agenp::srv::AuditOptions options;
    options.path = path;
    options.sample_every = 4;
    agenp::srv::AuditLog audit(options);
    for (int i = 0; i < 20; ++i) {
        agenp::srv::AuditEntry entry;
        entry.outcome = "Deny";
        audit.record(std::move(entry));
    }
    EXPECT_EQ(audit.recorded(), 5U);
    EXPECT_EQ(audit.sampled_out(), 15U);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Live serve-process tests.

// Feeds cmd_serve from the read end of a pipe so the test can inject
// traffic, scrape mid-flight, then close the write end to trigger the
// stdin-mode drain.
struct PipeStreambuf : std::streambuf {
    int fd;
    char ch = 0;
    explicit PipeStreambuf(int fd) : fd(fd) {}
    int underflow() override {
        ssize_t n = ::read(fd, &ch, 1);
        if (n <= 0) return traits_type::eof();
        setg(&ch, &ch, &ch + 1);
        return traits_type::to_int_type(ch);
    }
};

TEST(ServeMetricsTest, LiveScrapeServesValidExpositionHealthzAndStatz) {
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    std::atomic<std::uint16_t> metrics_port{0};
    ServeCliOptions options = base_serve_options("scrape");
    options.metrics_listen = true;
    options.metrics_listen_port = 0;
    options.metrics_announce_port = &metrics_port;
    std::ostringstream out;
    std::thread server([&] {
        PipeStreambuf buf(fds[0]);
        std::istream in(&buf);
        cmd_serve(options, in, out);
    });
    for (int i = 0; i < 2000 && metrics_port.load() == 0; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_NE(metrics_port.load(), 0);

    // Send traffic, then scrape while the server is alive.
    std::string input;
    for (int i = 0; i < 20; ++i) input += "do patrol\n";
    ASSERT_EQ(::write(fds[1], input.data(), input.size()), static_cast<ssize_t>(input.size()));
    // Wait until the exporter sees all 20 requests: the latency histogram
    // and the cost-table cells only exist once traffic was processed, so
    // scraping before that races (notably under sanitizer slowdown).
    for (int i = 0; i < 2000; ++i) {
        auto probe = get(metrics_port.load(), "/statz");
        if (probe.has_value() &&
            probe->body.find("\"completed\":20") != std::string::npos) {
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }

    auto healthz = get(metrics_port.load(), "/healthz");
    ASSERT_TRUE(healthz.has_value());
    EXPECT_EQ(healthz->status, 200);
    EXPECT_NE(healthz->body.find("\"status\":\"ok\""), std::string::npos);
    EXPECT_NE(healthz->content_type.find("application/json"), std::string::npos);

    auto metrics = get(metrics_port.load(), "/metrics");
    ASSERT_TRUE(metrics.has_value());
    EXPECT_EQ(metrics->status, 200);
    EXPECT_NE(metrics->content_type.find("version=0.0.4"), std::string::npos);
    std::string error;
    auto samples = parse_exposition(metrics->body, &error);
    EXPECT_TRUE(error.empty()) << error;
    EXPECT_FALSE(samples.empty());
    EXPECT_NE(metrics->body.find("agenp_srv_up 1"), std::string::npos);
    EXPECT_NE(metrics->body.find("agenp_srv_draining 0"), std::string::npos);
    EXPECT_NE(metrics->body.find("# TYPE agenp_srv_latency_us histogram"), std::string::npos);

    // Windowed families and the cost table ride on the same exposition.
    EXPECT_NE(metrics->body.find("agenp_window_requests_per_s"), std::string::npos);
    EXPECT_NE(metrics->body.find("agenp_window_latency_p95_us"), std::string::npos);
    EXPECT_NE(metrics->body.find("span=\"60s\""), std::string::npos);
    EXPECT_NE(metrics->body.find("agenp_cost_ewma_us"), std::string::npos);
    EXPECT_NE(metrics->body.find("check=\"srv.cache_probe\""), std::string::npos);

    // Grounding-memo gauges/counters (asg/memo.hpp) export alongside the
    // decision-cache families.
    EXPECT_NE(metrics->body.find("agenp_memo_hits"), std::string::npos);
    EXPECT_NE(metrics->body.find("agenp_memo_sat_hits"), std::string::npos);
    EXPECT_NE(metrics->body.find("agenp_memo_entries"), std::string::npos);

    auto statz = get(metrics_port.load(), "/statz");
    ASSERT_TRUE(statz.has_value());
    EXPECT_EQ(statz->status, 200);
    auto stats = agenp::srv::parse_json(statz->body);
    ASSERT_TRUE(stats.has_value()) << statz->body;
    EXPECT_NE(stats->find("cache"), nullptr);
    EXPECT_NE(stats->find("memo"), nullptr);
    EXPECT_NE(stats->find("locks"), nullptr);
    EXPECT_NE(stats->find("window"), nullptr);
    EXPECT_NE(stats->find("costs"), nullptr);
    EXPECT_NE(statz->body.find("\"10s\":{"), std::string::npos);
    EXPECT_NE(statz->body.find("\"p95_us\":"), std::string::npos);
    EXPECT_NE(statz->body.find("\"hit_rate\":"), std::string::npos);

    auto buildz = get(metrics_port.load(), "/buildz");
    ASSERT_TRUE(buildz.has_value());
    EXPECT_EQ(buildz->status, 200);
    EXPECT_NE(buildz->body.find("\"git_sha\":\""), std::string::npos);
    EXPECT_NE(buildz->body.find("\"compiler\":\""), std::string::npos);
    EXPECT_NE(buildz->body.find("\"build_type\":\""), std::string::npos);
    EXPECT_NE(buildz->body.find("\"protocol_version\":1"), std::string::npos);
    EXPECT_NE(buildz->body.find("\"replicas\":1"), std::string::npos);

    // Short one-shot profile over the live server; stacks may be empty on
    // an idle process, but the endpoint itself must answer in both forms.
    auto profz = get(metrics_port.load(), "/profz?seconds=0.2&hz=200&format=json");
    ASSERT_TRUE(profz.has_value());
    EXPECT_EQ(profz->status, 200);
    EXPECT_NE(profz->body.find("\"hz\":200"), std::string::npos);
    EXPECT_NE(profz->body.find("\"stacks\":["), std::string::npos);
    auto bad = get(metrics_port.load(), "/profz?seconds=900");
    ASSERT_TRUE(bad.has_value());
    EXPECT_EQ(bad->status, 400);

    auto missing = get(metrics_port.load(), "/nope");
    ASSERT_TRUE(missing.has_value());
    EXPECT_EQ(missing->status, 404);
    EXPECT_NE(missing->body.find("/profz"), std::string::npos);

    ::close(fds[1]);  // EOF -> drain -> exit
    server.join();
    ::close(fds[0]);
    EXPECT_NE(out.str().find("Permit"), std::string::npos);
}

TEST(ServeMetricsTest, AuditLinesCorrelateWithFlightRecorderTraceIds) {
    std::string audit_path = std::string(::testing::TempDir()) + "/agenp_audit_serve.ndjson";
    std::remove(audit_path.c_str());
    std::string input;
    for (int i = 0; i < 10; ++i) {
        input += "{\"decide\":\"do patrol\",\"id\":" + std::to_string(i + 1) + "}\n";
    }
    input += "!flight\n";
    ServeCliOptions options = base_serve_options("audit");
    options.audit_path = audit_path;
    std::istringstream in(input);
    std::ostringstream out;
    ASSERT_EQ(cmd_serve(options, in, out), 0);

    // Flight-recorder trace ids from the !flight control line (the flight
    // record `id` field carries the request's trace id).
    std::string text = out.str();
    auto flight_pos = text.find("FLIGHT_JSON ");
    ASSERT_NE(flight_pos, std::string::npos) << text;
    auto line_end = text.find('\n', flight_pos);
    std::string flight_line = text.substr(flight_pos + 12, line_end - flight_pos - 12);
    auto flight = agenp::srv::parse_json(flight_line);
    ASSERT_TRUE(flight.has_value()) << flight_line;
    std::vector<std::uint64_t> flight_traces;
    for (const auto& record : flight->array) {
        flight_traces.push_back(record.find("id")->as_uint());
    }
    ASSERT_EQ(flight_traces.size(), 10U);

    // Audit lines: every submitted request appears (sampling off), and the
    // flight recorder's trace ids all resolve to an audit line.
    std::ifstream audit_in(audit_path);
    std::vector<std::uint64_t> audit_traces;
    std::string line;
    while (std::getline(audit_in, line)) {
        auto parsed = agenp::srv::parse_json(line);
        ASSERT_TRUE(parsed.has_value()) << line;
        audit_traces.push_back(parsed->find("trace_id")->as_uint());
        EXPECT_EQ(parsed->find("outcome")->string, "Permit");
        ASSERT_NE(parsed->find("strategy"), nullptr);
        const std::string& strategy = parsed->find("strategy")->string;
        bool cache_hit = parsed->find("cache_hit")->boolean;
        EXPECT_EQ(strategy, cache_hit ? "cache" : "membership") << line;
        ASSERT_NE(parsed->find("model_version"), nullptr);
        ASSERT_NE(parsed->find("latency_us"), nullptr);
        ASSERT_NE(parsed->find("replica"), nullptr);
    }
    EXPECT_EQ(audit_traces.size(), 10U);
    for (std::uint64_t trace : flight_traces) {
        EXPECT_NE(std::find(audit_traces.begin(), audit_traces.end(), trace), audit_traces.end())
            << "flight trace_id " << trace << " missing from audit log";
    }
    std::remove(audit_path.c_str());
}

// One attempt at observing the drain-mode 503: start a listen-mode
// server, queue a solve-bound backlog, start a tight /healthz poller,
// then trigger the graceful drain. Returns true when a poll saw the 503
// draining body. The drain window is wide (one worker, no cache, a
// backlog of full solves, replies unread by the client until the end)
// but scheduling can still collapse it, so the caller retries.
bool drain_attempt(int attempt) {
    std::atomic<std::uint16_t> port{0};
    std::atomic<std::uint16_t> metrics_port{0};
    int shutdown_fds[2];
    if (::pipe(shutdown_fds) != 0) return false;
    ServeCliOptions options = base_serve_options("drain" + std::to_string(attempt));
    options.listen = true;
    options.listen_port = 0;
    options.metrics_listen = true;
    options.metrics_listen_port = 0;
    options.announce_port = &port;
    options.metrics_announce_port = &metrics_port;
    options.shutdown_fd = shutdown_fds[0];
    options.threads = 1;
    options.use_cache = false;
    std::istringstream in;
    std::ostringstream out;
    std::thread server([&] { cmd_serve(options, in, out); });
    for (int i = 0; i < 2000 && (port.load() == 0 || metrics_port.load() == 0); ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_NE(port.load(), 0);
    EXPECT_NE(metrics_port.load(), 0);

    auto healthy = get(metrics_port.load(), "/healthz");
    EXPECT_TRUE(healthy.has_value() && healthy->status == 200);

    // Queue a backlog and wait until the server has actually submitted it
    // (shutdown discards unread input, so the lines must be past the
    // event loop before the drain starts).
    agenp::srv::TcpClient client("127.0.0.1", port.load());
    constexpr int kBacklog = 400;
    for (int i = 0; i < kBacklog; ++i) {
        client.send_line("{\"decide\":\"do patrol\",\"id\":" + std::to_string(i + 1) + "}");
    }
    for (int i = 0; i < 2000; ++i) {
        auto statz = get(metrics_port.load(), "/statz");
        if (!statz.has_value()) break;
        auto stats = agenp::srv::parse_json(statz->body);
        if (stats.has_value() &&
            stats->find("submitted")->as_uint() >= static_cast<std::uint64_t>(kBacklog)) {
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    // Poll continuously from a dedicated thread so a request is already
    // in flight the moment the draining flag flips.
    std::atomic<bool> saw_draining{false};
    std::atomic<bool> poller_stop{false};
    std::thread poller([&] {
        while (!poller_stop.load(std::memory_order_acquire)) {
            auto response = get(metrics_port.load(), "/healthz", std::chrono::milliseconds(250));
            if (!response.has_value()) break;  // listener torn down
            if (response->status == 503 &&
                response->body.find("\"status\":\"draining\"") != std::string::npos) {
                saw_draining.store(true, std::memory_order_release);
                break;
            }
        }
    });
    EXPECT_EQ(::write(shutdown_fds[1], "x", 1), 1);
    // Let the drain finish: read the replies so the server can flush.
    while (client.recv_line(std::chrono::milliseconds(2000)).has_value()) {
    }
    server.join();
    poller_stop.store(true, std::memory_order_release);
    poller.join();
    ::close(shutdown_fds[0]);
    ::close(shutdown_fds[1]);
    return saw_draining.load();
}

TEST(ServeMetricsTest, ListenModeHealthzFlipsTo503WhileDraining) {
    // The 503 window is transient by design; each attempt stacks the odds
    // (solve-bound backlog, poll already in flight) but a loaded machine
    // can still blow through it, so allow a few fresh-server retries.
    bool saw_draining = false;
    for (int attempt = 0; attempt < 5 && !saw_draining; ++attempt) {
        saw_draining = drain_attempt(attempt);
    }
    EXPECT_TRUE(saw_draining);
}

}  // namespace
