#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cfg/earley.hpp"
#include "cfg/generate.hpp"
#include "cfg/grammar.hpp"

namespace agenp::cfg {
namespace {

const char* kPolicyGrammar = R"(
    rule    -> action subject
    action  -> "permit" | "deny"
    subject -> "admin" | "user" | "guest"
)";

TEST(Grammar, ParsesProductionsAndStart) {
    auto g = Grammar::parse(kPolicyGrammar);
    EXPECT_EQ(g.start().str(), "rule");
    EXPECT_EQ(g.productions().size(), 6u);
    EXPECT_EQ(g.productions_for(Symbol("action")).size(), 2u);
}

TEST(Grammar, RejectsUndefinedNonterminal) {
    EXPECT_THROW(Grammar::parse("a -> b"), GrammarError);
}

TEST(Grammar, RejectsMissingArrow) {
    EXPECT_THROW(Grammar::parse("a \"x\""), GrammarError);
}

TEST(Grammar, ParsesEpsilonAlternative) {
    auto g = Grammar::parse(R"(
        s -> "x" tail
        tail -> "y" tail | epsilon
    )");
    auto nullable = g.nullable_nonterminals();
    ASSERT_EQ(nullable.size(), 1u);
    EXPECT_EQ(nullable[0].str(), "tail");
}

TEST(Grammar, TerminalsMayContainSpaces) {
    auto g = Grammar::parse("s -> \"hello world\"");
    EXPECT_TRUE(recognizes(g, {Symbol("hello world")}));
}

TEST(Grammar, TokenizeRoundTrips) {
    auto tokens = tokenize("permit  admin read");
    EXPECT_EQ(tokens.size(), 3u);
    EXPECT_EQ(detokenize(tokens), "permit admin read");
}

TEST(Earley, RecognizesSimpleSentences) {
    auto g = Grammar::parse(kPolicyGrammar);
    EXPECT_TRUE(recognizes(g, tokenize("permit admin")));
    EXPECT_TRUE(recognizes(g, tokenize("deny guest")));
    EXPECT_FALSE(recognizes(g, tokenize("permit")));
    EXPECT_FALSE(recognizes(g, tokenize("admin permit")));
    EXPECT_FALSE(recognizes(g, tokenize("permit admin admin")));
}

TEST(Earley, RejectsUnknownTokens) {
    auto g = Grammar::parse(kPolicyGrammar);
    EXPECT_FALSE(recognizes(g, tokenize("permit root")));
}

TEST(Earley, EmptyStringOnlyWhenNullable) {
    auto g = Grammar::parse("s -> \"x\" | epsilon");
    EXPECT_TRUE(recognizes(g, {}));
    auto g2 = Grammar::parse("s -> \"x\"");
    EXPECT_FALSE(recognizes(g2, {}));
}

TEST(Earley, HandlesRecursion) {
    auto g = Grammar::parse(R"(
        list -> "item" list | "item"
    )");
    EXPECT_TRUE(recognizes(g, tokenize("item item item item")));
    EXPECT_FALSE(recognizes(g, tokenize("")));
}

TEST(Earley, HandlesNestedNullables) {
    auto g = Grammar::parse(R"(
        s -> a b "end"
        a -> "x" | epsilon
        b -> a a
    )");
    EXPECT_TRUE(recognizes(g, tokenize("end")));
    EXPECT_TRUE(recognizes(g, tokenize("x x x end")));
    EXPECT_FALSE(recognizes(g, tokenize("x x x x end")));
}

TEST(Earley, ParseTreeStructure) {
    auto g = Grammar::parse(kPolicyGrammar);
    auto trees = parse_trees(g, tokenize("permit admin"));
    ASSERT_EQ(trees.size(), 1u);
    const auto& t = trees[0];
    EXPECT_EQ(t.sym.name.str(), "rule");
    ASSERT_EQ(t.children.size(), 2u);
    EXPECT_EQ(t.children[0].sym.name.str(), "action");
    EXPECT_EQ(t.children[0].children[0].sym.name.str(), "permit");
    EXPECT_EQ(detokenize(t.yield()), "permit admin");
}

TEST(Earley, AmbiguousGrammarYieldsMultipleTrees) {
    // Two ways to derive "x x x": left- or right-heavy split.
    auto g = Grammar::parse(R"(
        s -> s s | "x"
    )");
    auto trees = parse_trees(g, tokenize("x x x"));
    EXPECT_EQ(trees.size(), 2u);
    std::set<std::string> shapes;
    for (const auto& t : trees) shapes.insert(t.to_string());
    EXPECT_EQ(shapes.size(), 2u);  // distinct structures
    for (const auto& t : trees) EXPECT_EQ(detokenize(t.yield()), "x x x");
}

TEST(Earley, MaxTreesCapsEnumeration) {
    auto g = Grammar::parse("s -> s s | \"x\"");
    auto trees = parse_trees(g, tokenize("x x x x x x"), {.max_trees = 3});
    EXPECT_EQ(trees.size(), 3u);
}

TEST(Earley, DeepRecursionParses) {
    auto g = Grammar::parse("list -> \"item\" list | \"item\"");
    TokenString tokens(50, Symbol("item"));
    auto trees = parse_trees(g, tokens, {.max_trees = 1});
    ASSERT_EQ(trees.size(), 1u);
    EXPECT_EQ(trees[0].yield().size(), 50u);
}

TEST(Generate, EnumeratesFiniteLanguageExactly) {
    auto g = Grammar::parse(kPolicyGrammar);
    auto result = generate_strings(g);
    EXPECT_FALSE(result.truncated);
    EXPECT_EQ(result.strings.size(), 6u);
    std::set<std::string> sentences;
    for (const auto& s : result.strings) sentences.insert(detokenize(s));
    EXPECT_TRUE(sentences.contains("permit admin"));
    EXPECT_TRUE(sentences.contains("deny guest"));
}

TEST(Generate, TruncatesInfiniteLanguages) {
    auto g = Grammar::parse("list -> \"item\" list | \"item\"");
    auto result = generate_strings(g, {.max_strings = 10, .max_length = 64});
    EXPECT_TRUE(result.truncated);
    EXPECT_EQ(result.strings.size(), 10u);
    // Shortest-first: the first sentence is the single item.
    EXPECT_EQ(detokenize(result.strings[0]), "item");
}

TEST(Generate, RespectsMaxLength) {
    auto g = Grammar::parse("list -> \"item\" list | \"item\"");
    auto result = generate_strings(g, {.max_strings = 1000, .max_length = 5});
    EXPECT_LE(result.strings.size(), 5u);
    for (const auto& s : result.strings) EXPECT_LE(s.size(), 5u);
}

TEST(Generate, EveryGeneratedStringIsRecognized) {
    auto g = Grammar::parse(R"(
        s -> "a" s "b" | epsilon
    )");
    auto result = generate_strings(g, {.max_strings = 8, .max_length = 16});
    for (const auto& s : result.strings) {
        EXPECT_TRUE(recognizes(g, s)) << detokenize(s);
    }
}

// Property: generation and recognition agree on a grammar family with
// parameterized alphabet size.
class GenerateRecognizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(GenerateRecognizeSweep, Agreement) {
    int k = GetParam();
    std::string text = "s -> item item\nitem ->";
    for (int i = 0; i < k; ++i) {
        text += std::string(i ? " | " : " ") + "\"w" + std::to_string(i) + "\"";
    }
    auto g = Grammar::parse(text);
    auto result = generate_strings(g);
    EXPECT_EQ(result.strings.size(), static_cast<std::size_t>(k) * k);
    for (const auto& s : result.strings) EXPECT_TRUE(recognizes(g, s));
}

INSTANTIATE_TEST_SUITE_P(Sweep, GenerateRecognizeSweep, ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace agenp::cfg
