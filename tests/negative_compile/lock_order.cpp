// MUST NOT COMPILE under -Werror=thread-safety-beta (ctest WILL_FAIL).
//
// Seeds a lock-hierarchy inversion: `low` is declared ACQUIRED_BEFORE
// `high` (mirroring the rank table in src/obs/lockprof.cpp), and
// backwards() takes them in the opposite order. Clang's beta analysis
// rejects the ordering violation; the runtime checker in lockprof
// catches the same class of bug in debug binaries when the static
// declaration is missing.
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace {

class TwoLocks {
public:
    void forwards() {  // declared order: fine
        agenp::util::MutexLock first(low_);
        agenp::util::MutexLock second(high_);
    }

    void backwards() {  // BUG: inverts the declared hierarchy
        agenp::util::MutexLock first(high_);
        agenp::util::MutexLock second(low_);
    }

private:
    agenp::util::Mutex low_ ACQUIRED_BEFORE(high_);
    agenp::util::Mutex high_;
};

}  // namespace

int main() {
    TwoLocks locks;
    locks.forwards();
    locks.backwards();
    return 0;
}
