// MUST NOT COMPILE under -Werror=thread-safety (ctest WILL_FAIL).
//
// Seeds the exact bug class the annotations exist to catch: a
// GUARDED_BY field read and written without its mutex held. If this
// file ever compiles, the thread-safety gate has stopped firing.
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace {

class Counter {
public:
    void add(int delta) {
        value_ += delta;  // BUG: mu_ not held
    }

private:
    agenp::util::Mutex mu_;
    int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
    Counter counter;
    counter.add(1);
    return 0;
}
