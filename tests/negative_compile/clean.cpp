// Control case for the negative-compile suite: correctly-locked code
// must compile cleanly under -Werror=thread-safety{,-beta}. If this file
// starts failing, the sibling WILL_FAIL cases prove nothing.
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace {

class Counter {
public:
    void add(int delta) {
        agenp::util::MutexLock lock(mu_);
        value_ += delta;
    }

    [[nodiscard]] int value() const {
        agenp::util::MutexLock lock(mu_);
        return value_;
    }

private:
    mutable agenp::util::Mutex mu_;
    int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
    Counter counter;
    counter.add(1);
    return counter.value() == 1 ? 0 : 1;
}
