// Sampling CPU profiler: off-by-default, start/stop/drain lifecycle,
// folded-stack output naming the hot function, ring/report accounting.
// The binary links with ENABLE_EXPORTS so dladdr() can symbolize frames.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/prof.hpp"

namespace obs = agenp::obs;

// External linkage + noinline: the sampler must find this name via
// dladdr(). The inner call keeps frequent function entries so deferred
// signal delivery (sanitizer runtimes) still lands inside the loop.
__attribute__((noinline)) std::uint64_t agenp_test_burn_step(std::uint64_t x) {
    // xorshift keeps the optimizer from collapsing the loop.
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
}

__attribute__((noinline)) std::uint64_t agenp_test_burn_cpu(std::chrono::milliseconds for_ms) {
    std::uint64_t x = 0x9e3779b97f4a7c15ULL;
    auto deadline = std::chrono::steady_clock::now() + for_ms;
    while (std::chrono::steady_clock::now() < deadline) {
        for (int i = 0; i < 4096; ++i) x = agenp_test_burn_step(x);
    }
    return x;
}

namespace {

bool under_thread_sanitizer() {
#if defined(__SANITIZE_THREAD__)
    return true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
    return true;
#else
    return false;
#endif
#else
    return false;
#endif
}

bool under_address_sanitizer() {
#if defined(__SANITIZE_ADDRESS__)
    return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
    return true;
#else
    return false;
#endif
#else
    return false;
#endif
}

}  // namespace

TEST(CpuProfiler, OffByDefault) {
    auto& profiler = obs::CpuProfiler::instance();
    EXPECT_FALSE(profiler.running());
    EXPECT_EQ(profiler.hz(), 0);
    // Draining a stopped profiler is a harmless empty report.
    obs::ProfileReport report = profiler.drain();
    EXPECT_EQ(report.samples, 0u);
    EXPECT_TRUE(report.stacks.empty());
    obs::ProfileReport stopped = profiler.stop();
    EXPECT_EQ(stopped.samples, 0u);
}

TEST(CpuProfiler, StartSampleStopProducesStacks) {
    auto& profiler = obs::CpuProfiler::instance();
    obs::ProfilerOptions options;
    options.hz = 250;
    ASSERT_TRUE(profiler.start(options));
    EXPECT_TRUE(profiler.running());
    EXPECT_EQ(profiler.hz(), 250);

    volatile std::uint64_t sink = agenp_test_burn_cpu(std::chrono::milliseconds(400));
    (void)sink;

    obs::ProfileReport report = profiler.stop();
    EXPECT_FALSE(profiler.running());
    EXPECT_EQ(profiler.hz(), 0);

    // 400ms of CPU at 250 Hz is ~100 samples; accept wide scheduling slop.
    EXPECT_GT(report.samples, 5u);
    ASSERT_FALSE(report.stacks.empty());
    EXPECT_GT(report.seconds, 0.0);
    EXPECT_EQ(report.hz, 250);

    std::string folded = report.folded();
    EXPECT_FALSE(folded.empty());
    // Every line is "frames count".
    EXPECT_NE(folded.find(' '), std::string::npos);
    // The burn function dominates the profile. TSan's deferred signal
    // delivery can attribute samples to runtime frames instead, and
    // ASan's signal interceptor leaves an extra unskipped frame at the
    // leaf of every stack, so the symbol assertions are best-effort
    // under sanitizers.
    if (!under_thread_sanitizer()) {
        EXPECT_NE(folded.find("agenp_test_burn"), std::string::npos) << folded;
    }
    if (!under_thread_sanitizer() && !under_address_sanitizer()) {
        std::string top = report.top(10);
        EXPECT_NE(top.find("agenp_test_burn"), std::string::npos) << top;
    }
}

TEST(CpuProfiler, DoubleStartRefusedAndStopIsFinal) {
    auto& profiler = obs::CpuProfiler::instance();
    ASSERT_TRUE(profiler.start(obs::ProfilerOptions{.hz = 97}));
    EXPECT_FALSE(profiler.start(obs::ProfilerOptions{.hz = 10}));
    EXPECT_EQ(profiler.hz(), 97);  // the running session keeps its rate
    (void)profiler.stop();
    EXPECT_FALSE(profiler.running());
    // Restartable after stop.
    ASSERT_TRUE(profiler.start(obs::ProfilerOptions{.hz = 50}));
    (void)profiler.stop();
}

TEST(CpuProfiler, DrainWindowsAContinuousSession) {
    auto& profiler = obs::CpuProfiler::instance();
    ASSERT_TRUE(profiler.start(obs::ProfilerOptions{.hz = 250}));
    (void)agenp_test_burn_cpu(std::chrono::milliseconds(200));
    obs::ProfileReport first = profiler.drain();
    EXPECT_TRUE(profiler.running());  // draining does not stop sampling
    // Immediately draining again returns a near-empty window.
    obs::ProfileReport second = profiler.drain();
    EXPECT_LT(second.samples, first.samples + 5);
    (void)agenp_test_burn_cpu(std::chrono::milliseconds(200));
    obs::ProfileReport third = profiler.stop();
    EXPECT_GT(first.samples + third.samples, 5u);
}

TEST(CpuProfiler, CollectOneShot) {
    auto& profiler = obs::CpuProfiler::instance();
    ASSERT_FALSE(profiler.running());
    std::thread burner([] { (void)agenp_test_burn_cpu(std::chrono::milliseconds(400)); });
    obs::ProfileReport report = profiler.collect(0.3, 250);
    burner.join();
    EXPECT_FALSE(profiler.running());  // collect() on a stopped profiler stops it again
    EXPECT_GT(report.samples, 0u);
    EXPECT_EQ(report.hz, 250);
}

TEST(CpuProfiler, ReportJsonShape) {
    obs::ProfileReport report;
    report.hz = 99;
    report.seconds = 1.5;
    report.samples = 3;
    report.stacks.push_back({"main;work", 2});
    report.stacks.push_back({"main;idle", 1});
    std::string json = report.to_json();
    EXPECT_NE(json.find("\"hz\":99"), std::string::npos);
    EXPECT_NE(json.find("\"samples\":3"), std::string::npos);
    EXPECT_NE(json.find("\"stack\":\"main;work\""), std::string::npos);
    EXPECT_NE(json.find("\"count\":2"), std::string::npos);
    EXPECT_EQ(report.folded(), "main;work 2\nmain;idle 1\n");
    // Flat profile attributes self time to leaves.
    std::string top = report.top(10);
    EXPECT_NE(top.find("work"), std::string::npos);
    EXPECT_NE(top.find("idle"), std::string::npos);
}
