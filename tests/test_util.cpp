#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/symbol.hpp"
#include "util/table.hpp"

namespace agenp::util {
namespace {

TEST(Symbol, InterningIsIdempotent) {
    Symbol a("hello");
    Symbol b("hello");
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.id(), b.id());
    EXPECT_EQ(a.str(), "hello");
}

TEST(Symbol, DistinctStringsGetDistinctIds) {
    Symbol a("alpha");
    Symbol b("beta");
    EXPECT_NE(a, b);
    EXPECT_NE(a.id(), b.id());
}

TEST(Symbol, DefaultIsEmptySymbol) {
    Symbol s;
    EXPECT_EQ(s.str(), "");
    EXPECT_EQ(s, Symbol(""));
}

TEST(Symbol, HashMatchesEquality) {
    std::hash<Symbol> h;
    EXPECT_EQ(h(Symbol("x")), h(Symbol("x")));
}

TEST(Rng, DeterministicForSameSeed) {
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next()) ++same;
    }
    EXPECT_LT(same, 5);
}

TEST(Rng, UniformStaysInRange) {
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        auto v = rng.uniform(-3, 9);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 9);
    }
}

TEST(Rng, Uniform01StaysInUnitInterval) {
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.uniform01();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, UniformCoversAllValues) {
    Rng rng(11);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 200; ++i) seen.insert(rng.uniform(0, 4));
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, ShufflePreservesElements) {
    Rng rng(3);
    std::vector<int> v{1, 2, 3, 4, 5};
    rng.shuffle(v);
    std::multiset<int> ms(v.begin(), v.end());
    EXPECT_EQ(ms, (std::multiset<int>{1, 2, 3, 4, 5}));
}

TEST(Strings, SplitDropsEmptyPieces) {
    auto parts = split("a,,b,c,", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitWhitespace) {
    auto parts = split_ws("  foo \t bar\nbaz ");
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[1], "bar");
}

TEST(Strings, Trim) {
    EXPECT_EQ(trim("  x y  "), "x y");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
}

TEST(Strings, Join) {
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, VariableNameDetection) {
    EXPECT_TRUE(is_variable_name("X"));
    EXPECT_TRUE(is_variable_name("_foo"));
    EXPECT_FALSE(is_variable_name("x"));
    EXPECT_FALSE(is_variable_name(""));
}

TEST(Strings, IntegerDetection) {
    EXPECT_TRUE(is_integer("42"));
    EXPECT_TRUE(is_integer("-7"));
    EXPECT_FALSE(is_integer("4x"));
    EXPECT_FALSE(is_integer("-"));
    EXPECT_FALSE(is_integer(""));
}

TEST(Table, RendersAlignedColumns) {
    Table t({"name", "value"});
    t.add("alpha", 3);
    t.add("b", 12345);
    auto s = t.render();
    EXPECT_NE(s.find("| name  |"), std::string::npos);
    EXPECT_NE(s.find("| alpha |"), std::string::npos);
    EXPECT_NE(s.find("12345"), std::string::npos);
}

TEST(Table, FormatsDoublesWithThreeDecimals) {
    Table t({"v"});
    t.add(0.5);
    EXPECT_NE(t.render().find("0.500"), std::string::npos);
}

// --- sharded intern table ---

TEST(Symbol, EmptySymbolIsAlwaysIdZero) {
    EXPECT_EQ(Symbol().id(), 0u);
    EXPECT_EQ(Symbol("").id(), 0u);
    EXPECT_EQ(Symbol("").str(), "");
}

TEST(Symbol, ConcurrentInterningAgreesAcrossThreads) {
    constexpr int kThreads = 8;
    constexpr int kStrings = 1000;
    // All threads intern the same strings in different orders; interning
    // must hand back one id per string no matter which thread won the race.
    std::vector<std::vector<std::uint32_t>> ids(kThreads,
                                                std::vector<std::uint32_t>(kStrings));
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kStrings; ++i) {
                int k = (i * 7 + t * 131) % kStrings;  // per-thread order
                ids[t][static_cast<std::size_t>(k)] =
                    Symbol("concurrent_intern_" + std::to_string(k)).id();
            }
        });
    }
    for (auto& th : threads) th.join();
    std::set<std::uint32_t> distinct;
    for (int i = 0; i < kStrings; ++i) {
        for (int t = 1; t < kThreads; ++t) {
            ASSERT_EQ(ids[t][static_cast<std::size_t>(i)], ids[0][static_cast<std::size_t>(i)])
                << "thread " << t << " got a different id for string " << i;
        }
        distinct.insert(ids[0][static_cast<std::size_t>(i)]);
        EXPECT_EQ(Symbol("concurrent_intern_" + std::to_string(i)).id(),
                  ids[0][static_cast<std::size_t>(i)]);
    }
    EXPECT_EQ(distinct.size(), static_cast<std::size_t>(kStrings));
}

TEST(Symbol, LookupSurvivesChunkGrowth) {
    // Interning enough strings to overflow intern-table chunks (8192 slots
    // per shard chunk) must not invalidate earlier handles: chunk storage
    // is append-only and previously returned string_views stay pinned.
    std::size_t before = interned_symbol_count();
    Symbol first("chunk_growth_sentinel");
    std::string_view pinned = first.str();
    std::vector<Symbol> batch;
    constexpr int kCount = 150'000;  // > 16 shards x 8192 first-chunk slots
    batch.reserve(kCount);
    for (int i = 0; i < kCount; ++i) {
        batch.push_back(Symbol("chunk_growth_" + std::to_string(i)));
    }
    EXPECT_GE(interned_symbol_count(), before + kCount);
    EXPECT_EQ(pinned, "chunk_growth_sentinel");
    EXPECT_EQ(Symbol("chunk_growth_sentinel"), first);
    // Spot-check roundtrips across the whole range.
    for (int i : {0, 1, 8191, 8192, 100'000, kCount - 1}) {
        EXPECT_EQ(batch[static_cast<std::size_t>(i)].str(),
                  "chunk_growth_" + std::to_string(i));
    }
}

TEST(Symbol, InternedCountGrowsMonotonically) {
    std::size_t before = interned_symbol_count();
    Symbol a("count_probe_a");
    Symbol b("count_probe_b");
    Symbol again("count_probe_a");  // idempotent: no new entry
    EXPECT_EQ(a, again);
    EXPECT_NE(a, b);
    EXPECT_GE(interned_symbol_count(), before + 2);
}

}  // namespace
}  // namespace agenp::util
