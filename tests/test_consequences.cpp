#include <gtest/gtest.h>

#include "asp/consequences.hpp"
#include "asp/grounder.hpp"
#include "asp/parser.hpp"

namespace agenp::asp {
namespace {

std::vector<std::string> names(const GroundProgram& gp, const std::vector<AtomId>& ids) {
    std::vector<std::string> out;
    for (auto id : ids) out.push_back(gp.atom(id).to_string());
    std::sort(out.begin(), out.end());
    return out;
}

TEST(Consequences, DefiniteProgramBraveEqualsCautious) {
    auto gp = ground(parse_program("p. q :- p."));
    auto c = compute_consequences(gp);
    ASSERT_TRUE(c.satisfiable);
    EXPECT_TRUE(c.exact);
    EXPECT_EQ(names(gp, c.brave), (std::vector<std::string>{"p", "q"}));
    EXPECT_EQ(c.brave, c.cautious);
}

TEST(Consequences, EvenLoopSplitsBraveAndCautious) {
    auto gp = ground(parse_program("a :- not b. b :- not a. c."));
    auto c = compute_consequences(gp);
    ASSERT_TRUE(c.satisfiable);
    EXPECT_EQ(names(gp, c.brave), (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(names(gp, c.cautious), (std::vector<std::string>{"c"}));
}

TEST(Consequences, UnsatisfiableProgramIsEmpty) {
    auto gp = ground(parse_program("p. :- p."));
    auto c = compute_consequences(gp);
    EXPECT_FALSE(c.satisfiable);
    EXPECT_TRUE(c.brave.empty());
    EXPECT_TRUE(c.cautious.empty());
}

TEST(Consequences, BraveHoldsHelper) {
    auto gp = ground(parse_program("a :- not b. b :- not a."));
    EXPECT_TRUE(bravely_holds(gp, parse_atom("a")));
    EXPECT_TRUE(bravely_holds(gp, parse_atom("b")));
    EXPECT_FALSE(bravely_holds(gp, parse_atom("c")));  // unknown atom
}

TEST(Consequences, CautiousHoldsHelper) {
    auto gp = ground(parse_program("a :- not b. b :- not a. c."));
    EXPECT_TRUE(cautiously_holds(gp, parse_atom("c")));
    EXPECT_FALSE(cautiously_holds(gp, parse_atom("a")));
}

TEST(Consequences, ConstraintsShapeTheSets) {
    auto gp = ground(parse_program("a :- not b. b :- not a. :- b."));
    auto c = compute_consequences(gp);
    ASSERT_TRUE(c.satisfiable);
    EXPECT_EQ(names(gp, c.brave), (std::vector<std::string>{"a"}));
    EXPECT_EQ(names(gp, c.cautious), (std::vector<std::string>{"a"}));
}

TEST(Consequences, ModelCapMarksInexact) {
    // 2^6 answer sets but a cap of 4 models.
    std::string text;
    for (int i = 0; i < 6; ++i) {
        text += "p" + std::to_string(i) + " :- not q" + std::to_string(i) + ".\n";
        text += "q" + std::to_string(i) + " :- not p" + std::to_string(i) + ".\n";
    }
    auto gp = ground(parse_program(text));
    auto c = compute_consequences(gp, {.max_models = 4});
    EXPECT_TRUE(c.satisfiable);
    EXPECT_FALSE(c.exact);
}

// Policy-analysis flavoured property: for every program in this family,
// cautious ⊆ brave.
class ConsequenceFamily : public ::testing::TestWithParam<const char*> {};

TEST_P(ConsequenceFamily, CautiousSubsetOfBrave) {
    auto gp = ground(parse_program(GetParam()));
    auto c = compute_consequences(gp);
    for (auto id : c.cautious) {
        EXPECT_TRUE(std::binary_search(c.brave.begin(), c.brave.end(), id));
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ConsequenceFamily,
                         ::testing::Values("p.", "a :- not b. b :- not a.",
                                           "a :- not b. b :- not a. c :- a. c :- b.",
                                           "x :- not y. y :- not x. :- x, y.",
                                           "p(1). p(2). q(X) :- p(X), not r(X). r(1)."));

}  // namespace
}  // namespace agenp::asp
