#include <gtest/gtest.h>

#include "xacml/learning_bridge.hpp"
#include "xacml/quality_filter.hpp"

namespace agenp::xacml {
namespace {

Request make_request(const Schema& s, std::vector<std::string> cats, std::int64_t hour) {
    Request r;
    std::size_t ci = 0;
    for (const auto& def : s.attributes) {
        if (def.numeric) {
            r.values.push_back(AttributeValue::of(hour));
        } else {
            r.values.push_back(AttributeValue::of(cats[ci++]));
        }
    }
    return r;
}

// A hand-written ground truth: deny guests on records, deny deletes outside
// hour >= 2, otherwise permit.
XacmlPolicy handwritten(const Schema& s) {
    XacmlPolicy p;
    p.id = "hand";
    p.alg = CombiningAlg::DenyOverrides;
    XacmlRule d1;
    d1.id = "no-guests-on-records";
    d1.effect = Effect::Deny;
    d1.target.all_of.push_back({static_cast<std::size_t>(s.index_of("role")), Match::Op::Eq,
                                AttributeValue::of(std::string("guest"))});
    d1.target.all_of.push_back({static_cast<std::size_t>(s.index_of("resource")), Match::Op::Eq,
                                AttributeValue::of(std::string("record"))});
    XacmlRule d2;
    d2.id = "no-early-deletes";
    d2.effect = Effect::Deny;
    d2.target.all_of.push_back({static_cast<std::size_t>(s.index_of("action")), Match::Op::Eq,
                                AttributeValue::of(std::string("delete"))});
    d2.target.all_of.push_back({static_cast<std::size_t>(s.index_of("hour")), Match::Op::Lt,
                                AttributeValue::of(2)});
    XacmlRule permit;
    permit.id = "permit-all";
    permit.effect = Effect::Permit;
    p.rules = {d1, d2, permit};
    return p;
}

TEST(Schema, HealthcareShape) {
    auto s = healthcare_schema();
    EXPECT_EQ(s.size(), 5u);
    EXPECT_EQ(s.index_of("role"), 0);
    EXPECT_EQ(s.index_of("missing"), -1);
    EXPECT_DOUBLE_EQ(s.request_space_size(), 4.0 * 3 * 3 * 2 * 6);
}

TEST(Schema, EnumerationCoversTheSpace) {
    auto s = healthcare_schema();
    auto all = enumerate_requests(s);
    EXPECT_EQ(all.size(), static_cast<std::size_t>(s.request_space_size()));
}

TEST(Schema, EnumerationRefusesHugeSpaces) {
    auto s = healthcare_schema();
    EXPECT_THROW(enumerate_requests(s, 10), std::runtime_error);
}

TEST(Evaluator, DenyOverridesSemantics) {
    auto s = healthcare_schema();
    auto p = handwritten(s);
    EXPECT_EQ(evaluate(p, make_request(s, {"guest", "er", "read", "record"}, 3)), Decision::Deny);
    EXPECT_EQ(evaluate(p, make_request(s, {"doctor", "er", "read", "record"}, 3)), Decision::Permit);
    EXPECT_EQ(evaluate(p, make_request(s, {"doctor", "er", "delete", "report"}, 1)), Decision::Deny);
    EXPECT_EQ(evaluate(p, make_request(s, {"doctor", "er", "delete", "report"}, 2)), Decision::Permit);
}

TEST(Evaluator, PolicyTargetGatesEverything) {
    auto s = healthcare_schema();
    auto p = handwritten(s);
    p.target.all_of.push_back({static_cast<std::size_t>(s.index_of("dept")), Match::Op::Eq,
                               AttributeValue::of(std::string("cardio"))});
    EXPECT_EQ(evaluate(p, make_request(s, {"doctor", "er", "read", "record"}, 3)),
              Decision::NotApplicable);
}

TEST(Evaluator, FirstApplicableStopsAtFirstHit) {
    auto s = healthcare_schema();
    XacmlPolicy p;
    p.alg = CombiningAlg::FirstApplicable;
    XacmlRule permit_doctors;
    permit_doctors.effect = Effect::Permit;
    permit_doctors.target.all_of.push_back({0, Match::Op::Eq, AttributeValue::of(std::string("doctor"))});
    XacmlRule deny_all;
    deny_all.effect = Effect::Deny;
    p.rules = {permit_doctors, deny_all};
    EXPECT_EQ(evaluate(p, make_request(s, {"doctor", "er", "read", "record"}, 0)), Decision::Permit);
    EXPECT_EQ(evaluate(p, make_request(s, {"nurse", "er", "read", "record"}, 0)), Decision::Deny);
}

TEST(Evaluator, PermitOverrides) {
    auto s = healthcare_schema();
    XacmlPolicy p;
    p.alg = CombiningAlg::PermitOverrides;
    XacmlRule deny_all;
    deny_all.effect = Effect::Deny;
    XacmlRule permit_doctors;
    permit_doctors.effect = Effect::Permit;
    permit_doctors.target.all_of.push_back({0, Match::Op::Eq, AttributeValue::of(std::string("doctor"))});
    p.rules = {deny_all, permit_doctors};
    EXPECT_EQ(evaluate(p, make_request(s, {"doctor", "er", "read", "record"}, 0)), Decision::Permit);
    EXPECT_EQ(evaluate(p, make_request(s, {"guest", "er", "read", "record"}, 0)), Decision::Deny);
}

TEST(Evaluator, NoApplicableRuleIsNotApplicable) {
    auto s = healthcare_schema();
    auto p = default_permit_family(s, {.deny_rules = 1, .catch_all_permit = false, .seed = 3});
    // Some request misses the lone deny rule; without catch-all it is NA.
    auto all = enumerate_requests(s);
    bool found_na = false;
    for (const auto& r : all) {
        if (evaluate(p, r) == Decision::NotApplicable) {
            found_na = true;
            break;
        }
    }
    EXPECT_TRUE(found_na);
}

TEST(Generator, DefaultPermitFamilyHasMixedDecisions) {
    auto s = healthcare_schema();
    auto p = default_permit_family(s, {.deny_rules = 3, .seed = 11});
    auto all = enumerate_requests(s);
    std::size_t permits = 0, denies = 0;
    for (const auto& r : all) {
        auto d = evaluate(p, r);
        permits += d == Decision::Permit;
        denies += d == Decision::Deny;
    }
    EXPECT_GT(permits, 0u);
    EXPECT_GT(denies, 0u);
    EXPECT_EQ(permits + denies, all.size());  // catch-all: no NA
}

TEST(Generator, SeedsAreDeterministic) {
    auto s = healthcare_schema();
    auto a = default_permit_family(s, {.seed = 5});
    auto b = default_permit_family(s, {.seed = 5});
    EXPECT_EQ(a.to_string(s), b.to_string(s));
}

TEST(Generator, NoiseInjectionRates) {
    auto s = healthcare_schema();
    auto p = default_permit_family(s, {.seed = 2});
    util::Rng rng(9);
    auto log = evaluate_batch(p, sample_requests(s, 500, rng));
    auto noisy = log;
    inject_noise(noisy, {.not_applicable_prob = 0.3, .seed = 4});
    std::size_t na = 0;
    for (const auto& e : noisy) na += e.decision == Decision::NotApplicable;
    EXPECT_GT(na, 100u);
    EXPECT_LT(na, 200u);
}

TEST(Bridge, RequestTokensRoundTripThroughGrammar) {
    auto s = healthcare_schema();
    auto bridge = make_bridge(s);
    auto r = make_request(s, {"doctor", "er", "read", "record"}, 3);
    auto tokens = request_tokens(s, r);
    EXPECT_EQ(cfg::detokenize(tokens), "role=doctor dept=er action=read resource=record hour=3");
    // Syntactically valid, and accepted by the unconstrained initial ASG.
    EXPECT_TRUE(asg::in_language(bridge.grammar, tokens));
}

TEST(Bridge, SpaceMentionsEveryAttribute) {
    auto s = healthcare_schema();
    auto bridge = make_bridge(s);
    std::set<std::string> preds;
    for (const auto& c : bridge.space.candidates) {
        for (const auto& l : c.rule.body) preds.insert(std::string(l.atom.predicate.str()));
    }
    for (const auto& def : s.attributes) EXPECT_TRUE(preds.contains(def.name)) << def.name;
}

TEST(Bridge, TargetRestrictionFiltersSpace) {
    auto s = healthcare_schema();
    BridgeOptions opts;
    opts.required_attributes = {"resource"};
    auto restricted = make_bridge(s, opts);
    auto full = make_bridge(s);
    EXPECT_LT(restricted.space.candidates.size(), full.space.candidates.size());
    for (const auto& c : restricted.space.candidates) {
        bool mentions = false;
        for (const auto& l : c.rule.body) mentions |= l.atom.predicate.str() == "resource";
        EXPECT_TRUE(mentions);
    }
}

TEST(Learning, RecoversHandwrittenPolicyExactly) {
    auto s = healthcare_schema();
    auto truth = handwritten(s);
    auto bridge = make_bridge(s);
    util::Rng rng(21);
    auto log = evaluate_batch(truth, sample_requests(s, 300, rng));
    auto result = learn_policy(bridge, log);
    ASSERT_TRUE(result.found) << result.failure_reason;
    auto learned = bridge.grammar.with_rules(result.hypothesis);
    // Exact semantic equivalence over the full request space.
    EXPECT_DOUBLE_EQ(agreement(bridge, learned, truth, enumerate_requests(s)), 1.0);
}

TEST(Learning, LearnedPolicyTranslatesToXacml) {
    auto s = healthcare_schema();
    auto truth = handwritten(s);
    auto bridge = make_bridge(s);
    util::Rng rng(22);
    auto log = evaluate_batch(truth, sample_requests(s, 300, rng));
    auto result = learn_policy(bridge, log);
    ASSERT_TRUE(result.found);
    auto xacml = to_xacml(bridge, result.hypothesis);
    // The translated policy agrees with the truth on every request.
    for (const auto& r : enumerate_requests(s)) {
        EXPECT_EQ(evaluate(xacml, r) == Decision::Permit, evaluate(truth, r) == Decision::Permit);
    }
}

TEST(Learning, RenderedPolicyMentionsConditions) {
    auto s = healthcare_schema();
    auto truth = handwritten(s);
    auto bridge = make_bridge(s);
    util::Rng rng(23);
    auto log = evaluate_batch(truth, sample_requests(s, 300, rng));
    auto result = learn_policy(bridge, log);
    ASSERT_TRUE(result.found);
    auto text = render_learned_policy(bridge, result.hypothesis);
    EXPECT_NE(text.find("Deny if"), std::string::npos);
    EXPECT_NE(text.find("Permit otherwise"), std::string::npos);
}

TEST(Learning, NotApplicableAsDecisionDistortsPolicy) {
    // Fig 3b Policy 3: treating NA as a decision makes the learned policy
    // overly restrictive; dropping NA entries fixes it.
    auto s = healthcare_schema();
    auto truth = handwritten(s);
    auto bridge = make_bridge(s);
    util::Rng rng(24);
    auto log = evaluate_batch(truth, sample_requests(s, 300, rng));
    inject_noise(log, {.not_applicable_prob = 0.25, .seed = 5});

    auto clean = learn_policy(bridge, log, NaHandling::Drop);
    ASSERT_TRUE(clean.found) << clean.failure_reason;
    auto learned_clean = bridge.grammar.with_rules(clean.hypothesis);
    double acc_clean = agreement(bridge, learned_clean, truth, enumerate_requests(s));

    auto dirty = learn_policy(bridge, log, NaHandling::AsDeny);
    double acc_dirty = 0.0;
    if (dirty.found) {
        auto learned_dirty = bridge.grammar.with_rules(dirty.hypothesis);
        acc_dirty = agreement(bridge, learned_dirty, truth, enumerate_requests(s));
    }
    EXPECT_DOUBLE_EQ(acc_clean, 1.0);
    EXPECT_LT(acc_dirty, acc_clean);
}

TEST(Learning, FirstApplicableFamilyIsApproximable) {
    // Interleaved permit/deny rules under first-applicable: the permit set
    // is not a pure box complement, so exact recovery is not guaranteed —
    // but with noise tolerance the learner still lands close.
    auto s = healthcare_schema();
    auto truth = first_applicable_family(s, {.deny_rules = 2, .matches_per_rule = 2, .seed = 42});
    auto bridge = make_bridge(s);
    util::Rng rng(26);
    auto log = evaluate_batch(truth, sample_requests(s, 250, rng));
    ilp::LearnOptions options;
    options.noise_penalty = 2;
    options.max_cost = 60;
    auto result = learn_policy(bridge, log, NaHandling::Drop, options);
    ASSERT_TRUE(result.found) << result.failure_reason;
    auto learned = bridge.grammar.with_rules(result.hypothesis);
    EXPECT_GT(agreement(bridge, learned, truth, enumerate_requests(s)), 0.85);
}

TEST(QualityFilter, DropsIrrelevantResponses) {
    auto s = healthcare_schema();
    auto r = make_request(s, {"doctor", "er", "read", "record"}, 1);
    std::vector<LogEntry> log = {{r, Decision::NotApplicable}, {r, Decision::Permit}};
    FilterStats stats;
    auto filtered = filter_low_quality(log, s, &stats);
    ASSERT_EQ(filtered.size(), 1u);
    EXPECT_EQ(filtered[0].decision, Decision::Permit);
    EXPECT_EQ(stats.irrelevant_removed, 1u);
}

TEST(QualityFilter, MajorityVoteResolvesConflicts) {
    auto s = healthcare_schema();
    auto r = make_request(s, {"nurse", "er", "read", "record"}, 1);
    std::vector<LogEntry> log = {{r, Decision::Permit}, {r, Decision::Permit}, {r, Decision::Deny}};
    FilterStats stats;
    auto filtered = filter_low_quality(log, s, &stats);
    ASSERT_EQ(filtered.size(), 1u);
    EXPECT_EQ(filtered[0].decision, Decision::Permit);
    EXPECT_EQ(stats.inconsistent_removed, 1u);
    EXPECT_EQ(stats.duplicates_removed, 1u);
}

TEST(QualityFilter, TiesAreDropped) {
    auto s = healthcare_schema();
    auto r = make_request(s, {"nurse", "er", "read", "record"}, 1);
    std::vector<LogEntry> log = {{r, Decision::Permit}, {r, Decision::Deny}};
    FilterStats stats;
    auto filtered = filter_low_quality(log, s, &stats);
    EXPECT_TRUE(filtered.empty());
    EXPECT_EQ(stats.inconsistent_removed, 2u);
}

TEST(QualityFilter, FilteringRepairsFlippedLabels) {
    // Label-flip noise on duplicated requests is repaired by majority vote,
    // letting the learner succeed where the raw log is contradictory.
    auto s = healthcare_schema();
    auto truth = handwritten(s);
    auto bridge = make_bridge(s);
    util::Rng rng(25);
    auto base = sample_requests(s, 120, rng);
    std::vector<Request> repeated;
    for (const auto& r : base) {
        for (int copy = 0; copy < 5; ++copy) repeated.push_back(r);
    }
    auto log = evaluate_batch(truth, repeated);
    inject_noise(log, {.flip_prob = 0.04, .seed = 6});

    auto raw = learn_policy(bridge, log);
    EXPECT_FALSE(raw.found);  // contradictory duplicates sink Definition 3

    auto filtered = filter_low_quality(log, s);
    auto repaired = learn_policy(bridge, filtered);
    ASSERT_TRUE(repaired.found) << repaired.failure_reason;
    auto learned = bridge.grammar.with_rules(repaired.hypothesis);
    EXPECT_GT(agreement(bridge, learned, truth, enumerate_requests(s)), 0.95);
}

}  // namespace
}  // namespace agenp::xacml
