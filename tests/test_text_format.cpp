#include <gtest/gtest.h>

#include "xacml/generator.hpp"
#include "xacml/text_format.hpp"

namespace agenp::xacml {
namespace {

TEST(SchemaText, RoundTrips) {
    auto schema = healthcare_schema();
    auto text = schema_to_text(schema, "healthcare");
    auto reparsed = parse_schema(text);
    ASSERT_EQ(reparsed.size(), schema.size());
    for (std::size_t i = 0; i < schema.size(); ++i) {
        EXPECT_EQ(reparsed.attributes[i].name, schema.attributes[i].name);
        EXPECT_EQ(reparsed.attributes[i].numeric, schema.attributes[i].numeric);
        EXPECT_EQ(reparsed.attributes[i].category, schema.attributes[i].category);
        EXPECT_EQ(reparsed.attributes[i].values, schema.attributes[i].values);
        EXPECT_EQ(reparsed.attributes[i].min, schema.attributes[i].min);
        EXPECT_EQ(reparsed.attributes[i].max, schema.attributes[i].max);
    }
}

TEST(SchemaText, RejectsMalformedInput) {
    EXPECT_THROW(parse_schema(""), FormatError);
    EXPECT_THROW(parse_schema("schema s\nattr x subject weird"), FormatError);
    EXPECT_THROW(parse_schema("schema s\nattr x nowhere categorical a"), FormatError);
    EXPECT_THROW(parse_schema("schema s\nattr x subject numeric 1"), FormatError);
    EXPECT_THROW(parse_schema("schema s\nattr x subject categorical"), FormatError);
}

TEST(PolicyText, RoundTripPreservesSemantics) {
    auto schema = healthcare_schema();
    for (std::uint64_t seed : {3u, 14u, 77u}) {
        auto policy = default_permit_family(schema, {.deny_rules = 3, .seed = seed});
        auto text = policy_to_text(policy, schema);
        auto reparsed = parse_policy(text, schema);
        for (const auto& r : enumerate_requests(schema)) {
            EXPECT_EQ(evaluate(policy, r), evaluate(reparsed, r)) << text;
        }
    }
}

TEST(PolicyText, ParsesOperatorsAndTargets) {
    auto schema = healthcare_schema();
    auto policy = parse_policy(R"(
        policy p1 first-applicable
        target dept=er
        rule d1 deny hour<2 action=delete
        rule d2 deny role!=doctor action=write
        rule ok permit any
    )", schema);
    EXPECT_EQ(policy.alg, CombiningAlg::FirstApplicable);
    ASSERT_EQ(policy.rules.size(), 3u);
    EXPECT_EQ(policy.target.all_of.size(), 1u);
    EXPECT_EQ(policy.rules[0].target.all_of[0].op, Match::Op::Lt);
    EXPECT_EQ(policy.rules[1].target.all_of[0].op, Match::Op::Ne);
    EXPECT_TRUE(policy.rules[2].target.all_of.empty());
}

TEST(PolicyText, RejectsBadPolicies) {
    auto schema = healthcare_schema();
    EXPECT_THROW(parse_policy("rule r permit any", schema), FormatError);  // no header
    EXPECT_THROW(parse_policy("policy p frobnicate", schema), FormatError);
    EXPECT_THROW(parse_policy("policy p deny-overrides\nrule r maybe any", schema), FormatError);
    EXPECT_THROW(parse_policy("policy p deny-overrides\nrule r deny rank=x", schema), FormatError);
    EXPECT_THROW(parse_policy("policy p deny-overrides\nrule r deny hour=abc", schema), FormatError);
}

TEST(RequestText, RoundTrips) {
    auto schema = healthcare_schema();
    util::Rng rng(5);
    for (int i = 0; i < 20; ++i) {
        auto r = sample_request(schema, rng);
        auto text = request_to_text(r, schema);
        auto reparsed = parse_request(text, schema);
        EXPECT_EQ(reparsed.to_string(schema), r.to_string(schema));
    }
}

TEST(RequestText, ValidatesAttributes) {
    auto schema = healthcare_schema();
    EXPECT_THROW(parse_request("role=doctor", schema), FormatError);  // missing attrs
    EXPECT_THROW(parse_request(
        "role=doctor dept=er action=read resource=record hour=3 extra=1", schema), FormatError);
    EXPECT_THROW(parse_request(
        "role=doctor dept=er action=read resource=record hour=late", schema), FormatError);
}

}  // namespace
}  // namespace agenp::xacml
