#include <gtest/gtest.h>

#include "asp/program.hpp"
#include "asp/substitution.hpp"

namespace agenp::asp {
namespace {

TEST(Term, GroundnessAndVariables) {
    Term t = Term::compound(Symbol("f"), {Term::variable("X"), Term::integer(3)});
    EXPECT_FALSE(t.is_ground());
    std::vector<Symbol> vars;
    t.collect_variables(vars);
    ASSERT_EQ(vars.size(), 1u);
    EXPECT_EQ(vars[0].str(), "X");
    EXPECT_TRUE(Term::compound(Symbol("f"), {Term::integer(1)}).is_ground());
}

TEST(Term, ToStringRoundTrips) {
    Term t = Term::compound(Symbol("f"), {Term::constant("a"), Term::integer(-2)});
    EXPECT_EQ(t.to_string(), "f(a,-2)");
}

TEST(Term, EqualityAndHash) {
    Term a = Term::compound(Symbol("g"), {Term::constant("c")});
    Term b = Term::compound(Symbol("g"), {Term::constant("c")});
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.hash(), b.hash());
    EXPECT_NE(a, Term::constant("g"));
}

TEST(Term, TotalOrderIsConsistent) {
    Term i = Term::integer(1);
    Term c = Term::constant("a");
    EXPECT_TRUE((i < c) != (c < i));
    EXPECT_FALSE(i < i);
}

TEST(Atom, ToStringWithAnnotation) {
    Atom a(Symbol("holds"), {Term::integer(1)}, 2);
    EXPECT_EQ(a.to_string(), "holds(1)@2");
    Atom plain(Symbol("p"), {});
    EXPECT_EQ(plain.to_string(), "p");
}

TEST(Atom, AnnotationDistinguishesAtoms) {
    Atom a(Symbol("a"), {}, 1);
    Atom b(Symbol("a"), {}, 2);
    Atom c(Symbol("a"), {});
    EXPECT_NE(a, b);
    EXPECT_NE(a, c);
}

TEST(Comparison, IntegerComparisons) {
    Comparison c(Comparison::Op::Le, Term::integer(3), Term::integer(5));
    EXPECT_EQ(c.evaluate(), std::optional<bool>(true));
    Comparison d(Comparison::Op::Gt, Term::integer(3), Term::integer(5));
    EXPECT_EQ(d.evaluate(), std::optional<bool>(false));
}

TEST(Comparison, ArithmeticEvaluation) {
    // 2*3+1 = 7
    Term lhs = Term::compound(Symbol("+"),
                              {Term::compound(Symbol("*"), {Term::integer(2), Term::integer(3)}),
                               Term::integer(1)});
    Comparison c(Comparison::Op::Eq, lhs, Term::integer(7));
    EXPECT_EQ(c.evaluate(), std::optional<bool>(true));
}

TEST(Comparison, DivisionByZeroIsUndefined) {
    Term lhs = Term::compound(Symbol("/"), {Term::integer(4), Term::integer(0)});
    Comparison c(Comparison::Op::Eq, lhs, Term::integer(1));
    EXPECT_EQ(c.evaluate(), std::nullopt);
}

TEST(Comparison, NonGroundIsUndefined) {
    Comparison c(Comparison::Op::Lt, Term::variable("X"), Term::integer(1));
    EXPECT_EQ(c.evaluate(), std::nullopt);
}

TEST(Comparison, SymbolicEqualityIsStructural) {
    Comparison c(Comparison::Op::Eq, Term::constant("a"), Term::constant("a"));
    EXPECT_EQ(c.evaluate(), std::optional<bool>(true));
    Comparison d(Comparison::Op::Ne, Term::constant("a"), Term::constant("b"));
    EXPECT_EQ(d.evaluate(), std::optional<bool>(true));
}

TEST(Rule, SafetyRequiresPositiveBinding) {
    // p(X) :- not q(X).  — unsafe
    Rule r = Rule::normal(Atom(Symbol("p"), {Term::variable("X")}),
                          {Literal::neg(Atom(Symbol("q"), {Term::variable("X")}))});
    EXPECT_FALSE(r.is_safe());
    // p(X) :- q(X), not r(X).  — safe
    Rule s = Rule::normal(Atom(Symbol("p"), {Term::variable("X")}),
                          {Literal::pos(Atom(Symbol("q"), {Term::variable("X")})),
                           Literal::neg(Atom(Symbol("r"), {Term::variable("X")}))});
    EXPECT_TRUE(s.is_safe());
}

TEST(Rule, EqualityBinderMakesVariableSafe) {
    // p(X) :- X = 3.
    Rule r = Rule::normal(Atom(Symbol("p"), {Term::variable("X")}), {},
                          {Comparison(Comparison::Op::Eq, Term::variable("X"), Term::integer(3))});
    EXPECT_TRUE(r.is_safe());
}

TEST(Rule, ChainedBindersAreSafe) {
    // p(Y) :- X = 2, Y = X + 1.
    Rule r = Rule::normal(
        Atom(Symbol("p"), {Term::variable("Y")}), {},
        {Comparison(Comparison::Op::Eq, Term::variable("X"), Term::integer(2)),
         Comparison(Comparison::Op::Eq, Term::variable("Y"),
                    Term::compound(Symbol("+"), {Term::variable("X"), Term::integer(1)}))});
    EXPECT_TRUE(r.is_safe());
}

TEST(Rule, ConstraintPrinting) {
    Rule r = Rule::constraint({Literal::pos(Atom(Symbol("p"), {})), Literal::neg(Atom(Symbol("q"), {}))});
    EXPECT_EQ(r.to_string(), ":- p, not q.");
}

TEST(Rule, SizeCountsHeadAndBody) {
    Rule r = Rule::normal(Atom(Symbol("p"), {}), {Literal::pos(Atom(Symbol("q"), {}))},
                          {Comparison(Comparison::Op::Lt, Term::integer(1), Term::integer(2))});
    EXPECT_EQ(r.size(), 3);
    EXPECT_EQ(Rule::constraint({Literal::pos(Atom(Symbol("q"), {}))}).size(), 1);
}

TEST(Subst, MatchBindsVariables) {
    Subst s;
    Atom pattern(Symbol("p"), {Term::variable("X"), Term::variable("X")});
    Atom good(Symbol("p"), {Term::integer(1), Term::integer(1)});
    Atom bad(Symbol("p"), {Term::integer(1), Term::integer(2)});
    EXPECT_TRUE(match_atom(pattern, good, s));
    Subst s2;
    EXPECT_FALSE(match_atom(pattern, bad, s2));
}

TEST(Subst, ApplySubstitutesRecursively) {
    Subst s;
    s.bind(Symbol("X"), Term::integer(5));
    Term t = Term::compound(Symbol("f"), {Term::variable("X"), Term::variable("Y")});
    Term applied = apply_subst(t, s);
    EXPECT_EQ(applied.to_string(), "f(5,Y)");
}

TEST(Subst, TruncateRollsBack) {
    Subst s;
    s.bind(Symbol("X"), Term::integer(1));
    auto mark = s.size();
    s.bind(Symbol("Y"), Term::integer(2));
    s.truncate(mark);
    EXPECT_EQ(s.lookup(Symbol("Y")), nullptr);
    EXPECT_NE(s.lookup(Symbol("X")), nullptr);
}

TEST(Program, AppendConcatenates) {
    Program a, b;
    a.add_fact(Atom(Symbol("p"), {}));
    b.add_fact(Atom(Symbol("q"), {}));
    a.append(b);
    EXPECT_EQ(a.size(), 2u);
    EXPECT_TRUE(a.is_ground());
}

}  // namespace
}  // namespace agenp::asp
